"""Parity suite for the map-parallel evaluation engine.

The load-bearing contract of :class:`repro.snn.engine.MapParallelEngine` is
bitwise identity: evaluating N fault maps (and techniques) stacked into one
fused pass must produce, per row, exactly the spikes, predictions and spike
counts a stand-alone :class:`repro.snn.engine.BatchedInferenceEngine` run of
that row yields over the same rasters — across clean, faulty and protected
modes, for any map count (including the single-map degenerate case) and any
chunking.  On top of the engine parity, the campaign-level tests pin that
grouped map-parallel cell execution writes byte-identical result-store
records to the cell-at-a-time serial path.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.bound_and_protect import BnPVariant, NeuronProtection, WeightBounding
from repro.core.mitigation import (
    BnPTechnique,
    MitigationTechnique,
    NoMitigation,
    ReExecutionTMR,
    evaluate_techniques_mapped,
    prepare_map_assets,
)
from repro.data.datasets import Dataset
from repro.eval.campaign import (
    CampaignSpec,
    TechniqueSpec,
    build_experiment_cells,
    execute_cell,
    execute_cell_group,
    group_cells,
    run_campaign,
)
from repro.eval.experiment import ExperimentConfig, ExperimentRunner
from repro.faults.fault_map import FaultMap, FaultMapGenerator
from repro.faults.models import ComputeEngineFaultConfig, NeuronFaultType
from repro.hardware.enhancements import MitigationKind
from repro.snn.engine import BatchedInferenceEngine, MapRow
from repro.snn.inference import class_indicator, evaluate_rows
from repro.snn.network import NetworkConfig
from repro.snn.training import TrainedModel


# --------------------------------------------------------------------- #
# reference path: one row at a time through the batched engine
# --------------------------------------------------------------------- #
def reference_row(model, row: MapRow, raster: np.ndarray, batch_size: int):
    """Evaluate one row alone via the per-map batched engine.

    Returns ``(spike_counts, predictions)`` computed exactly like the
    pre-map-parallel path: a fresh network carrying the row's registers and
    operation status, chunked ``run_encoded`` calls with the faulty-reset
    latch carried across chunks, the bounding rule as ``effective_weights``
    and a :class:`NeuronProtection` monitor when the row is protected.
    """
    network = model.build_network(rng=0)
    network.synapses.set_registers(np.asarray(row.registers))
    network.neurons.set_operation_status(row.operation_status)
    monitor = (
        NeuronProtection(trigger_cycles=row.protection_trigger_cycles)
        if row.protection_trigger_cycles is not None
        else None
    )
    engine = BatchedInferenceEngine(network)
    latch = network.neurons.reset_fault_latched.copy()
    counts = []
    for start in range(0, raster.shape[0], batch_size):
        chunk = engine.run_encoded(
            raster[start : start + batch_size],
            effective_weights=row.weight_rule,
            step_monitor=monitor,
            initial_reset_latch=latch,
        )
        latch = chunk.final_reset_latch
        counts.append(chunk.spike_counts)
    spike_counts = np.concatenate(counts)
    votes = spike_counts.astype(np.float64) @ class_indicator(model.neuron_labels)
    return spike_counts, np.argmax(votes, axis=1).astype(np.int64)


def crafted_fault_maps(model) -> list:
    """Deterministic fault maps covering every corruption mode.

    Hand-picked rather than drawn so the suite always exercises high-bit
    register flips (the bounding path), a faulty ``Vmem reset`` (the
    cross-sample latch fix-up), a gated spike generator, and a broken leak
    — independent of any RNG draw.
    """
    shape = (model.network_config.n_inputs, model.n_neurons)
    bits = model.network_config.weight_bits
    return [
        # High-bit synapse flips only: weights blow past the clean maximum.
        FaultMap(
            crossbar_shape=shape,
            synapse_flat_indices=np.array([3, 40, 41, 500, 1207]),
            synapse_bit_positions=np.array([bits - 1] * 5),
            fault_rate=1e-2,
            bit_width=bits,
        ),
        # Faulty resets (latch fix-up) plus a dead spike generator.
        FaultMap(
            crossbar_shape=shape,
            synapse_flat_indices=np.array([7, 123]),
            synapse_bit_positions=np.array([bits - 1, 2]),
            neuron_faults=[
                (1, NeuronFaultType.VMEM_RESET),
                (4, NeuronFaultType.SPIKE_GENERATION),
            ],
            fault_rate=1e-2,
            bit_width=bits,
        ),
        # Neuron faults only: broken leak and increase, second faulty reset.
        FaultMap(
            crossbar_shape=shape,
            neuron_faults=[
                (0, NeuronFaultType.VMEM_LEAK),
                (2, NeuronFaultType.VMEM_INCREASE),
                (3, NeuronFaultType.VMEM_RESET),
            ],
            fault_rate=1e-2,
            bit_width=bits,
        ),
    ]


@pytest.fixture(scope="module")
def parity_rasters(trained_model, small_split):
    """Three per-cell encodings of the shared test set."""
    _, test_set = small_split
    encoder = trained_model.network_config.make_encoder()
    flat = np.asarray(test_set.images, dtype=np.float64).reshape(len(test_set), -1)
    return [
        encoder.encode_batch(flat[:, np.newaxis, :], rng=np.random.default_rng(seed))
        for seed in (11, 22, 33)
    ]


class TestEngineParity:
    def _rows_for(self, model, assets, mode: str):
        bounding = WeightBounding.for_variant(
            BnPVariant.BNP3,
            clean_max_weight=model.clean_max_weight,
            most_probable_weight=model.clean_most_probable_weight,
        ).as_weight_rule()
        rows = []
        for asset in assets:
            if mode == "clean":
                rows.append(
                    MapRow(asset.raster_index, asset.clean_registers,
                           asset.healthy_status)
                )
            elif mode == "faulty":
                rows.append(
                    MapRow(asset.raster_index, asset.faulty_registers, asset.status)
                )
            else:  # protected
                rows.append(
                    MapRow(
                        asset.raster_index,
                        asset.faulty_registers,
                        asset.status,
                        weight_rule=bounding,
                        protection_trigger_cycles=2,
                    )
                )
        return rows

    @pytest.mark.parametrize("mode", ["clean", "faulty", "protected"])
    @pytest.mark.parametrize("n_maps", [1, 2, 3])
    def test_bit_identical_to_batched_engine(
        self, trained_model, small_split, parity_rasters, mode, n_maps
    ):
        """Fused rows equal per-row batched evaluation, spike for spike."""
        _, test_set = small_split
        maps = crafted_fault_maps(trained_model)[:n_maps]
        assets = prepare_map_assets(trained_model, maps, n_maps)
        rows = self._rows_for(trained_model, assets, mode)
        rasters = parity_rasters[:n_maps]

        # Odd chunk size: exercises partial tails and latch carry.
        results = evaluate_rows(
            rows,
            rasters,
            trained_model.neuron_labels,
            test_set.labels,
            quantizer=trained_model.network_config.make_quantizer(
                trained_model.clean_max_weight
            ),
            params=trained_model.network_config.neuron_params,
            theta=trained_model.theta,
            batch_size=7,
        )
        for row, raster, result in zip(rows, rasters, results):
            ref_counts, ref_predictions = reference_row(
                trained_model, row, raster, batch_size=7
            )
            assert np.array_equal(result.spike_counts, ref_counts)
            assert np.array_equal(result.predictions, ref_predictions)
            assert result.total_input_spikes == int(raster.sum())

    def test_mixed_technique_rows_share_one_pass(
        self, trained_model, small_split, parity_rasters
    ):
        """Heterogeneous rows (clean + faulty + bounded) stay bit-exact.

        This is the campaign shape: the same base GEMM serves unbounded and
        bounded rows, different thresholds coexist, and protected rows ride
        next to unprotected ones.
        """
        _, test_set = small_split
        maps = crafted_fault_maps(trained_model)
        assets = prepare_map_assets(trained_model, maps, len(maps))
        bnp1 = WeightBounding.bnp1(trained_model.clean_max_weight).as_weight_rule()
        bnp2 = WeightBounding.bnp2(trained_model.clean_max_weight).as_weight_rule()
        rows = []
        for asset in assets:
            rows.extend(
                [
                    MapRow(asset.raster_index, asset.faulty_registers, asset.status),
                    MapRow(asset.raster_index, asset.clean_registers,
                           asset.healthy_status),
                    MapRow(asset.raster_index, asset.faulty_registers, asset.status,
                           weight_rule=bnp1, protection_trigger_cycles=2),
                    MapRow(asset.raster_index, asset.faulty_registers, asset.status,
                           weight_rule=bnp2, protection_trigger_cycles=3),
                ]
            )
        results = evaluate_rows(
            rows,
            parity_rasters,
            trained_model.neuron_labels,
            test_set.labels,
            quantizer=trained_model.network_config.make_quantizer(
                trained_model.clean_max_weight
            ),
            params=trained_model.network_config.neuron_params,
            theta=trained_model.theta,
            batch_size=8,
        )
        for row, result in zip(rows, results):
            ref_counts, ref_predictions = reference_row(
                trained_model, row, parity_rasters[row.raster_index], batch_size=8
            )
            assert np.array_equal(result.spike_counts, ref_counts)
            assert np.array_equal(result.predictions, ref_predictions)

    def test_techniques_mapped_match_plans(
        self, trained_model, small_split, parity_rasters
    ):
        """The fused technique evaluation equals per-row references.

        Covers the combine step too: re-execution's majority vote over its
        shared clean row must equal voting over explicitly repeated runs.
        """
        _, test_set = small_split
        maps = crafted_fault_maps(trained_model)
        config = ComputeEngineFaultConfig(fault_rate=1e-2)
        techniques = [
            NoMitigation(),
            ReExecutionTMR(),
            BnPTechnique(BnPVariant.BNP3),
        ]
        generators = [np.random.default_rng(seed) for seed in (1, 2, 3)]
        outcomes = evaluate_techniques_mapped(
            trained_model,
            test_set,
            techniques,
            fault_config=config,
            fault_maps=maps,
            generators=generators,
            rasters=parity_rasters,
            batch_size=8,
        )
        assets = prepare_map_assets(trained_model, maps, len(maps))
        for index, asset in enumerate(assets):
            raster = parity_rasters[index]
            # No mitigation: the faulty engine as-is.
            counts, predictions = reference_row(
                trained_model,
                MapRow(index, asset.faulty_registers, asset.status),
                raster,
                batch_size=8,
            )
            outcome = outcomes[MitigationKind.NO_MITIGATION][index]
            assert np.array_equal(outcome.predictions, predictions)
            assert np.array_equal(outcome.spike_counts, counts)

            # Re-execution: majority of [faulty, clean, clean] per sample.
            clean_counts, clean_predictions = reference_row(
                trained_model,
                MapRow(index, asset.clean_registers, asset.healthy_status),
                raster,
                batch_size=8,
            )
            voted = ReExecutionTMR._majority_vote(
                [predictions, clean_predictions, clean_predictions]
            )
            tmr = outcomes[MitigationKind.RE_EXECUTION][index]
            assert np.array_equal(tmr.predictions, voted)
            assert np.array_equal(tmr.spike_counts, counts)
            assert tmr.total_input_spikes == 3 * int(raster.sum())


# --------------------------------------------------------------------- #
# campaign-level: grouped units vs cell-at-a-time execution
# --------------------------------------------------------------------- #
def _campaign_spec() -> CampaignSpec:
    return CampaignSpec(
        name="parity",
        experiments=[
            ExperimentConfig(
                workload="mnist",
                n_neurons=16,
                n_train=48,
                n_test=16,
                timesteps=40,
                epochs=1,
            )
        ],
        fault_rates=[1e-3, 1e-1],
        techniques=[
            TechniqueSpec(MitigationKind.NO_MITIGATION),
            TechniqueSpec(MitigationKind.RE_EXECUTION),
            TechniqueSpec(MitigationKind.BNP3),
        ],
        n_trials=2,
        seed=77,
        runner_seed=77,
    )


class TestCampaignGrouping:
    def test_group_cells_partition(self):
        cells = build_experiment_cells("exp", [1e-3, 1e-1], 3, root_seed=0)
        units = group_cells(cells)
        # clean cell alone, then one unit of three trials per rate
        assert [len(unit) for unit in units] == [1, 3, 3]
        assert units[0][0].is_clean
        assert {cell.rate_index for cell in units[1]} == {0}
        assert {cell.rate_index for cell in units[2]} == {1}

    def test_grouped_records_equal_per_cell_records(self, trained_model, small_split):
        """execute_cell_group == execute_cell per cell, field for field."""
        _, test_set = small_split
        techniques = [NoMitigation(), ReExecutionTMR(), BnPTechnique(BnPVariant.BNP1)]
        cells = build_experiment_cells(
            "exp", [1e-2], 3, root_seed=5, batch_size=8, include_clean=False
        )
        grouped = execute_cell_group(cells, trained_model, test_set, techniques)
        for cell, grouped_result in zip(cells, grouped):
            single = execute_cell(cell, trained_model, test_set, techniques)
            assert single.cell_id == grouped_result.cell_id
            assert single.accuracies == grouped_result.accuracies
            assert single.n_faults == grouped_result.n_faults

    def test_campaign_store_records_byte_identical(self, tmp_path):
        """Grouped and cell-at-a-time campaigns write identical records.

        The full pipeline — spec expansion, execution, the JSONL result
        store — must agree byte for byte once the (inherently timing
        dependent) duration field is normalised.
        """
        spec = _campaign_spec()
        runner = ExperimentRunner(root_seed=spec.runner_seed)
        grouped = run_campaign(
            spec, store_path=tmp_path / "grouped.jsonl", runner=runner,
            map_parallel=True,
        )
        serial = run_campaign(
            spec, store_path=tmp_path / "serial.jsonl", runner=runner,
            map_parallel=False,
        )
        assert grouped.n_executed == serial.n_executed == grouped.n_cells

        def normalised_records(path):
            records = {}
            for line in path.read_text().splitlines():
                record = json.loads(line)
                if record.get("type") != "cell":
                    continue
                record["duration_seconds"] = 0.0
                records[record["cell_id"]] = json.dumps(
                    record, sort_keys=True, separators=(",", ":")
                )
            return records

        grouped_records = normalised_records(tmp_path / "grouped.jsonl")
        serial_records = normalised_records(tmp_path / "serial.jsonl")
        assert grouped_records == serial_records
        # And the aggregated sweeps agree exactly.
        key = spec.experiment_keys[0]
        assert grouped.sweeps[key].summary() == serial.sweeps[key].summary()


class _EvaluateOnlyTechnique(MitigationTechnique):
    """A user-style technique implementing only the evaluate() interface."""

    kind = MitigationKind.RE_EXECUTION  # any identity distinct in the list

    def evaluate(
        self, model, dataset, fault_config=None, rng=None, fault_map=None,
        batch_size=None,
    ):
        """Classify through the unmitigated engine (stand-alone path)."""
        from repro.snn.inference import InferenceEngine
        from repro.utils.rng import resolve_rng

        generator = resolve_rng(rng)
        network, _ = self._build_faulty_network(
            model, fault_config, generator, fault_map
        )
        engine = InferenceEngine(network, model.neuron_labels)
        return engine.evaluate(dataset, rng=generator, batch_size=batch_size)


class TestEvaluateOnlyFallback:
    def test_plan_less_techniques_run_via_standalone_evaluate(
        self, trained_model, small_split
    ):
        """Techniques without plan_rows still work in (grouped) campaigns.

        The fused pass must skip them and run their stand-alone
        ``evaluate`` per map, with grouped and cell-at-a-time execution
        agreeing bit for bit.
        """
        _, test_set = small_split
        techniques = [NoMitigation(), _EvaluateOnlyTechnique()]
        cells = build_experiment_cells(
            "exp", [1e-2], 2, root_seed=8, batch_size=8, include_clean=False
        )
        grouped = execute_cell_group(cells, trained_model, test_set, techniques)
        for cell, grouped_result in zip(cells, grouped):
            single = execute_cell(cell, trained_model, test_set, techniques)
            assert single.accuracies == grouped_result.accuracies
        assert set(grouped[0].accuracies) == {"no_mitigation", "re_execution"}

        # The clean cell evaluates the fallback technique too.
        clean = build_experiment_cells("exp", [1e-2], 1, root_seed=8, batch_size=8)[0]
        record = execute_cell(clean, trained_model, test_set, techniques)
        assert set(record.accuracies) == {"no_mitigation", "re_execution", "clean"}


# --------------------------------------------------------------------- #
# headline bugfix: per-technique clean baselines
# --------------------------------------------------------------------- #
def _bounding_sensitive_model_and_dataset():
    """A model whose BnP1 clean accuracy *provably* differs from unmitigated.

    Every discriminative weight sits exactly at the clean maximum, so BnP1
    (substitute 0) silences the whole network at fault rate zero: class 1
    samples can no longer be recognised, while the unmitigated clean
    network classifies both classes perfectly.
    """
    config = NetworkConfig(
        n_inputs=4, n_neurons=2, timesteps=50, target_total_intensity=None,
        max_rate=0.25,
    )
    weights = np.array(
        [
            [1.0, 0.0],
            [1.0, 0.0],
            [0.0, 1.0],
            [0.0, 1.0],
        ]
    )
    model = TrainedModel(
        network_config=config,
        weights=weights,
        theta=np.zeros(2),
        neuron_labels=np.array([0, 1]),
        clean_max_weight=1.0,
        clean_most_probable_weight=1.0,
    )
    images = np.array(
        [[[1.0, 1.0], [0.0, 0.0]], [[0.0, 0.0], [1.0, 1.0]]] * 8
    )
    labels = np.array([0, 1] * 8)
    return model, Dataset(images=images, labels=labels, name="bounding-probe")


class TestCleanCellAttribution:
    def test_clean_cell_reports_per_technique_baselines(self):
        """Regression: BnP's clean baseline must be its own, not technique[0]'s.

        Under the old ``techniques[0]`` attribution the clean record held a
        single shared accuracy, so this test fails there twice over: the
        per-technique key is absent, and BnP1's true fault-free baseline
        (bounding silences the max-weight synapses) differs from the
        unmitigated one.
        """
        model, dataset = _bounding_sensitive_model_and_dataset()
        techniques = [NoMitigation(), BnPTechnique(BnPVariant.BNP1)]
        clean_cell = build_experiment_cells(
            "probe", [1e-2], 1, root_seed=3, batch_size=4
        )[0]
        assert clean_cell.is_clean
        result = execute_cell(clean_cell, model, dataset, techniques)

        assert set(result.accuracies) == {"no_mitigation", "bnp1", "clean"}
        # The unmitigated clean network is perfect; the bounded one loses
        # every class-1 sample (a silent network votes class 0).
        assert result.accuracies["no_mitigation"] == 100.0
        assert result.accuracies["bnp1"] == 50.0
        # The legacy shared entry keeps the unmitigated reference.
        assert result.accuracies["clean"] == result.accuracies["no_mitigation"]

    def test_sweep_exposes_per_technique_clean_baselines(self):
        """collect_sweep_result surfaces the per-technique clean accuracies."""
        from repro.eval.campaign import collect_sweep_result

        model, dataset = _bounding_sensitive_model_and_dataset()
        techniques = [NoMitigation(), BnPTechnique(BnPVariant.BNP1)]
        cells = build_experiment_cells("probe", [1e-2], 1, root_seed=3, batch_size=4)
        records = {}
        for unit in group_cells(cells):
            for result in execute_cell_group(unit, model, dataset, techniques):
                records[result.cell_id] = result
        sweep = collect_sweep_result(
            label="probe",
            fault_rates=[1e-2],
            technique_kinds=[MitigationKind.NO_MITIGATION, MitigationKind.BNP1],
            n_trials=1,
            records=records,
        )
        assert sweep.clean_accuracy == 100.0
        assert sweep.clean_accuracy_of(MitigationKind.NO_MITIGATION) == 100.0
        assert sweep.clean_accuracy_of(MitigationKind.BNP1) == 50.0
        # Summary round-trips the per-technique baselines.
        from repro.eval.sweep import SweepResult

        assert SweepResult.from_summary(sweep.summary()).summary() == sweep.summary()
