"""Model-zoo suite: per-model parity, encoders, registries and round-trips.

The neuron-model layer's contract is that every registered model composes
with the existing fault-injection, mitigation and campaign machinery
unchanged, and that the default LIF/Poisson pair stays byte-identical to
the pre-zoo behaviour.  This suite pins both halves: kernel-level
equivalences (``cuba_advance`` with zero current decay *is* the LIF
kernel; the fixed-point kernel stays on its integer grid), per-model /
per-encoding engine parity (chunk-size invariance under clean, faulty and
protected modes; map-parallel vs batched bit-identity), training parity
(vectorized vs sequential WTA per model; the pairwise-STDP guard),
snapshot and serving-registry round-trips including sidecars written
before the zoo existed, and the campaign-layer serialization contract
(labels, ``to_dict`` omission at defaults, grid axes).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bound_and_protect import BnPVariant, NeuronProtection, WeightBounding
from repro.eval.campaign import CampaignSpec, TechniqueSpec
from repro.eval.experiment import ExperimentConfig
from repro.data.synthetic_mnist import SyntheticMNIST
from repro.hardware.enhancements import MitigationKind
from repro.serve.registry import ModelRegistry
from repro.snn.encoding import (
    DEFAULT_ENCODING,
    PoissonEncoder,
    TTFSEncoder,
    available_encodings,
    get_encoder,
    register_encoder,
)
from repro.snn.engine import BatchedInferenceEngine, MapRow
from repro.snn.inference import InferenceEngine, class_indicator, evaluate_rows
from repro.snn.kernels import (
    KernelWorkspace,
    LIFStepConfig,
    OperationMasks,
    cuba_advance,
    fixed_point_advance,
    lif_advance,
)
from repro.snn.models import (
    DEFAULT_NEURON_MODEL,
    CurrentLIFModel,
    FixedPointLIFModel,
    LIFModel,
    NeuronModel,
    available_models,
    get_model,
    register_model,
    resolve_model,
)
from repro.snn.network import DiehlCookNetwork, NetworkConfig
from repro.snn.neuron import NeuronOperationStatus
from repro.snn.training import TrainedModel, TrainingConfig, TrainingRunner
from repro.utils.serialization import load_json, save_json

N_NEURONS = 16
TIMESTEPS = 30
MODELS = ("lif", "cuba_lif", "fixed_point_lif")
ENCODINGS = ("poisson", "ttfs")


@pytest.fixture(scope="module")
def zoo_dataset():
    """Ten small synthetic digits shared by the parity tests."""
    return SyntheticMNIST().generate(n_samples=10, rng=11)


@pytest.fixture()
def labels():
    return np.arange(N_NEURONS, dtype=np.int64) % 4


def zoo_config(model=DEFAULT_NEURON_MODEL, encoding=DEFAULT_ENCODING):
    return NetworkConfig(
        n_inputs=784,
        n_neurons=N_NEURONS,
        timesteps=TIMESTEPS,
        neuron_model=model,
        encoding=encoding,
    )


def build_network(config, status=None):
    network = DiehlCookNetwork(config, rng=1)
    if status is not None:
        network.set_neuron_fault_status(status.copy())
    return network


def faulty_status():
    """One fault of every operation kind, including two faulty resets."""
    status = NeuronOperationStatus.healthy(N_NEURONS)
    status.vmem_leak_ok[3] = False
    status.vmem_increase_ok[6] = False
    status.spike_generation_ok[9] = False
    status.vmem_reset_ok[[1, 12]] = False
    return status


def handmade_model(model_name, encoding=DEFAULT_ENCODING):
    """A deterministic trained model without paying for actual training."""
    config = zoo_config(model_name, encoding)
    rng = np.random.default_rng(3)
    return TrainedModel(
        network_config=config,
        weights=rng.random((784, N_NEURONS)),
        theta=rng.random(N_NEURONS) * 0.05,
        neuron_labels=np.arange(N_NEURONS, dtype=np.int64) % 4,
        clean_max_weight=1.0,
        clean_most_probable_weight=0.6,
    )


# --------------------------------------------------------------------- #
# registries
# --------------------------------------------------------------------- #
class TestModelRegistry:
    def test_shipped_models_are_registered(self):
        names = available_models()
        for name in MODELS:
            assert name in names

    def test_unknown_model_raises_with_known_names(self):
        with pytest.raises(ValueError, match="lif"):
            get_model("hodgkin_huxley")

    def test_duplicate_registration_requires_replace(self):
        class _Probe(NeuronModel):
            name = "_zoo_probe"

        register_model(_Probe())
        with pytest.raises(ValueError, match="already registered"):
            register_model(_Probe())
        register_model(_Probe(), replace=True)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            register_model(NeuronModel())

    def test_resolve_model_normalises_selectors(self):
        assert resolve_model(None) is get_model(DEFAULT_NEURON_MODEL)
        assert resolve_model("cuba_lif") is get_model("cuba_lif")
        instance = CurrentLIFModel(current_decay=0.25)
        assert resolve_model(instance) is instance

    def test_shipped_model_types(self):
        assert isinstance(get_model("lif"), LIFModel)
        assert isinstance(get_model("cuba_lif"), CurrentLIFModel)
        assert isinstance(get_model("fixed_point_lif"), FixedPointLIFModel)

    def test_hyper_parameter_validation(self):
        with pytest.raises(ValueError):
            CurrentLIFModel(current_decay=1.0)
        with pytest.raises(ValueError):
            FixedPointLIFModel(weight_exp=17)
        with pytest.raises(ValueError):
            FixedPointLIFModel(decay_bits=0)

    def test_network_config_validates_names_at_construction(self):
        with pytest.raises(ValueError, match="unknown neuron model"):
            NetworkConfig(n_neurons=4, neuron_model="bogus")
        with pytest.raises(ValueError, match="unknown encoding"):
            NetworkConfig(n_neurons=4, encoding="bogus")


class TestEncoderRegistry:
    def test_shipped_encodings_are_registered(self):
        names = available_encodings()
        for name in ENCODINGS:
            assert name in names

    def test_unknown_encoding_raises_with_known_names(self):
        with pytest.raises(ValueError, match="poisson"):
            get_encoder("rank_order")

    def test_duplicate_registration_requires_replace(self):
        register_encoder("_zoo_probe_enc", PoissonEncoder)
        with pytest.raises(ValueError, match="already registered"):
            register_encoder("_zoo_probe_enc", PoissonEncoder)
        register_encoder("_zoo_probe_enc", TTFSEncoder, replace=True)

    def test_make_encoder_dispatches_by_name(self):
        assert isinstance(zoo_config().make_encoder(), PoissonEncoder)
        encoder = zoo_config(encoding="ttfs").make_encoder()
        assert isinstance(encoder, TTFSEncoder)
        assert encoder.timesteps == TIMESTEPS


# --------------------------------------------------------------------- #
# TTFS encoder semantics
# --------------------------------------------------------------------- #
class TestTTFSEncoder:
    def _encoder(self):
        return TTFSEncoder(timesteps=TIMESTEPS, max_rate=0.25)

    def test_one_spike_per_active_pixel(self):
        image = SyntheticMNIST().render(5, rng=2)
        encoder = self._encoder()
        raster = encoder.encode(image)
        counts = raster.sum(axis=0)
        assert np.array_equal(
            counts.astype(np.float64), encoder.expected_spike_counts(image)
        )
        assert counts.max() <= 1

    def test_brighter_pixels_spike_earlier(self):
        image = np.linspace(0.0, 1.0, 16).reshape(4, 4)
        times = self._encoder().spike_times(image)
        assert times[0] == -1  # zero-intensity pixel stays silent
        active = times[times >= 0]
        # Monotone non-increasing latency as intensity rises.
        assert np.all(np.diff(active) <= 0)
        assert active[-1] == 0  # the brightest pixel fires first

    def test_deterministic_and_rng_untouched(self):
        image = SyntheticMNIST().render(3, rng=4)
        encoder = self._encoder()
        rng = np.random.default_rng(5)
        state_before = rng.bit_generator.state
        first = encoder.encode(image, rng=rng)
        assert rng.bit_generator.state == state_before
        second = encoder.encode(image, rng=np.random.default_rng(999))
        assert np.array_equal(first, second)

    def test_batch_equals_stacked_sequential(self):
        images = np.stack([SyntheticMNIST().render(d, rng=d) for d in (1, 4, 7)])
        encoder = self._encoder()
        stacked = np.stack([encoder.encode(image) for image in images])
        batched = encoder.encode_batch(images, rng=np.random.default_rng(1))
        assert np.array_equal(stacked, batched)

    def test_blank_image_is_silent(self):
        raster = self._encoder().encode(np.zeros((28, 28)))
        assert not raster.any()


# --------------------------------------------------------------------- #
# kernel-level equivalences
# --------------------------------------------------------------------- #
class TestKernelEquivalences:
    def _setup(self, rng, rows=2, batch=3, n=8, timesteps=20):
        statuses = [NeuronOperationStatus.healthy(n) for _ in range(rows)]
        statuses[0].vmem_reset_ok[1] = False
        statuses[0].spike_generation_ok[2] = False
        masks = OperationMasks.stack(statuses)
        currents = rng.random((timesteps, rows, batch, n)) * 2.0 - 0.2
        threshold = 0.8 + rng.random(n)
        shape = (rows, batch, n)
        state = {
            "v": rng.random(shape),
            "refractory": np.zeros(shape, dtype=np.int64),
            "counter": np.zeros(shape, dtype=np.int64),
            "disabled": np.zeros(shape, dtype=bool),
            "latched": np.zeros(shape, dtype=bool),
        }
        config = LIFStepConfig(
            v_rest=0.0,
            v_reset=0.0,
            v_min=-2.0,
            membrane_decay=0.9,
            refractory_period=3,
            inhibition_strength=1.0,
        )
        return masks, currents, threshold, state, config

    def _advance(self, kernel, masks, currents, threshold, state, config, **kwargs):
        state = {key: value.copy() for key, value in state.items()}
        shape = state["v"].shape
        output = np.zeros(currents.shape, dtype=bool)
        kernel(
            currents,
            output,
            state["v"],
            state["refractory"],
            state["counter"],
            state["disabled"],
            state["latched"],
            np.empty(shape, dtype=bool),
            np.empty(shape, dtype=bool),
            masks,
            threshold,
            config,
            KernelWorkspace(),
            **kwargs,
        )
        return output, state

    def test_cuba_zero_decay_is_lif_bitwise(self):
        """``current_decay=0`` degenerates CUBA to the LIF kernel exactly."""
        masks, currents, threshold, state, config = self._setup(
            np.random.default_rng(42)
        )
        lif_out, lif_state = self._advance(
            lif_advance, masks, currents, threshold, state, config,
            backend="numpy",
        )
        cuba_out, cuba_state = self._advance(
            cuba_advance, masks, currents, threshold, state, config,
            current_decay=0.0,
        )
        assert np.array_equal(lif_out, cuba_out)
        for key in state:
            assert np.array_equal(lif_state[key], cuba_state[key]), key

    def test_cuba_current_state_changes_dynamics(self):
        """Nonzero decay must actually integrate a current state."""
        masks, currents, threshold, state, config = self._setup(
            np.random.default_rng(43)
        )
        zero, _ = self._advance(
            cuba_advance, masks, currents, threshold, state, config,
            current_decay=0.0,
        )
        half, _ = self._advance(
            cuba_advance, masks, currents, threshold, state, config,
            current_decay=0.5,
        )
        assert not np.array_equal(zero, half)

    def test_fixed_point_membrane_stays_on_grid(self):
        """Exit membranes are exact multiples of ``2**-weight_exp``."""
        masks, currents, threshold, state, config = self._setup(
            np.random.default_rng(44)
        )
        weight_exp = 6
        _, fp_state = self._advance(
            fixed_point_advance, masks, currents, threshold, state, config,
            weight_exp=weight_exp, decay_bits=12,
        )
        scaled = fp_state["v"] * (1 << weight_exp)
        assert np.array_equal(scaled, np.floor(scaled))

    @pytest.mark.parametrize("kernel_kwargs", [
        (cuba_advance, {"current_decay": 0.5}),
        (fixed_point_advance, {"weight_exp": 6, "decay_bits": 12}),
    ], ids=["cuba", "fixed_point"])
    def test_backend_argument_accepted_and_ignored(self, kernel_kwargs):
        """The silent-fallback contract: any backend name runs numpy."""
        kernel, extra = kernel_kwargs
        masks, currents, threshold, state, config = self._setup(
            np.random.default_rng(45)
        )
        plain, plain_state = self._advance(
            kernel, masks, currents, threshold, state, config, **extra
        )
        named, named_state = self._advance(
            kernel, masks, currents, threshold, state, config,
            backend="numba", **extra,
        )
        assert np.array_equal(plain, named)
        for key in state:
            assert np.array_equal(plain_state[key], named_state[key]), key


# --------------------------------------------------------------------- #
# per-model engine parity
# --------------------------------------------------------------------- #
class TestPerModelEngineParity:
    """Batch-of-one chunking is the sequential-order reference for models
    whose dynamics the per-timestep ``LIFNeuronGroup`` loop cannot express."""

    @pytest.mark.parametrize("encoding", ENCODINGS)
    @pytest.mark.parametrize("model", MODELS)
    def test_chunk_size_invariance_clean(self, zoo_dataset, labels, model, encoding):
        config = zoo_config(model, encoding)
        outcomes = [
            InferenceEngine(build_network(config), labels).evaluate(
                zoo_dataset, rng=np.random.default_rng(7), batch_size=batch_size
            )
            for batch_size in (1, 4, 64)
        ]
        assert outcomes[0].spike_counts.sum() > 0  # the model actually spikes
        for other in outcomes[1:]:
            assert np.array_equal(outcomes[0].predictions, other.predictions)
            assert np.array_equal(outcomes[0].spike_counts, other.spike_counts)

    @pytest.mark.parametrize("model", MODELS)
    def test_chunk_size_invariance_faulty(self, zoo_dataset, labels, model):
        config = zoo_config(model)
        networks = [build_network(config, faulty_status()) for _ in range(2)]
        outcomes = [
            InferenceEngine(network, labels).evaluate(
                zoo_dataset, rng=np.random.default_rng(7), batch_size=batch_size
            )
            for network, batch_size in zip(networks, (1, 5))
        ]
        assert np.array_equal(outcomes[0].predictions, outcomes[1].predictions)
        assert np.array_equal(outcomes[0].spike_counts, outcomes[1].spike_counts)
        # The faulty-reset latch crosses chunk boundaries identically.
        assert np.array_equal(
            networks[0].neurons.reset_fault_latched,
            networks[1].neurons.reset_fault_latched,
        )

    @pytest.mark.parametrize("model", MODELS)
    def test_chunk_size_invariance_protected(self, zoo_dataset, labels, model):
        config = zoo_config(model)
        monitors = [NeuronProtection(trigger_cycles=2) for _ in range(2)]
        outcomes = [
            InferenceEngine(build_network(config, faulty_status()), labels).evaluate(
                zoo_dataset,
                rng=np.random.default_rng(7),
                step_monitor=monitor,
                batch_size=batch_size,
            )
            for monitor, batch_size in zip(monitors, (1, 5))
        ]
        assert np.array_equal(outcomes[0].predictions, outcomes[1].predictions)
        assert monitors[0].statistics() == monitors[1].statistics()

    def test_lif_model_still_matches_sequential_reference(
        self, zoo_dataset, labels
    ):
        """The default model keeps its original per-timestep-loop parity."""
        config = zoo_config()
        sequential = InferenceEngine(
            build_network(config, faulty_status()), labels
        ).evaluate_sequential(zoo_dataset, rng=np.random.default_rng(7))
        batched = InferenceEngine(
            build_network(config, faulty_status()), labels
        ).evaluate(zoo_dataset, rng=np.random.default_rng(7), batch_size=4)
        assert np.array_equal(sequential.predictions, batched.predictions)
        assert np.array_equal(sequential.spike_counts, batched.spike_counts)

    @pytest.mark.parametrize("model", MODELS)
    def test_map_parallel_matches_batched_engine(self, model):
        """Fused rows equal per-row batched runs for every model."""
        trained = handmade_model(model)
        network = trained.build_network(rng=0)
        encoder = trained.network_config.make_encoder()
        images = np.stack(
            [SyntheticMNIST().render(digit, rng=digit) for digit in (2, 5, 8, 1, 6)]
        )
        raster = encoder.encode_batch(images, rng=np.random.default_rng(31))

        clean_registers = np.asarray(network.synapses.registers).copy()
        faulty_registers = clean_registers.copy()
        faulty_registers.flat[[3, 500, 1207]] = trained.network_config.make_quantizer(
            trained.clean_max_weight
        ).max_code
        bounding = WeightBounding.for_variant(
            BnPVariant.BNP3,
            clean_max_weight=trained.clean_max_weight,
            most_probable_weight=trained.clean_most_probable_weight,
        ).as_weight_rule()
        rows = [
            MapRow(0, clean_registers, NeuronOperationStatus.healthy(N_NEURONS)),
            MapRow(0, faulty_registers, faulty_status()),
            MapRow(
                0,
                faulty_registers,
                faulty_status(),
                weight_rule=bounding,
                protection_trigger_cycles=2,
            ),
        ]
        results = evaluate_rows(
            rows,
            [raster],
            trained.neuron_labels,
            np.zeros(raster.shape[0], dtype=np.int64),
            quantizer=trained.network_config.make_quantizer(
                trained.clean_max_weight
            ),
            params=trained.network_config.neuron_params,
            theta=trained.theta,
            batch_size=2,
            model=model,
        )
        for row, result in zip(rows, results):
            reference = trained.build_network(rng=0)
            reference.synapses.set_registers(np.asarray(row.registers))
            reference.neurons.set_operation_status(row.operation_status)
            monitor = (
                NeuronProtection(trigger_cycles=row.protection_trigger_cycles)
                if row.protection_trigger_cycles is not None
                else None
            )
            engine = BatchedInferenceEngine(reference)
            latch = reference.neurons.reset_fault_latched.copy()
            counts = []
            for start in range(0, raster.shape[0], 2):
                chunk = engine.run_encoded(
                    raster[start : start + 2],
                    effective_weights=row.weight_rule,
                    step_monitor=monitor,
                    initial_reset_latch=latch,
                )
                latch = chunk.final_reset_latch
                counts.append(chunk.spike_counts)
            spike_counts = np.concatenate(counts)
            votes = spike_counts.astype(np.float64) @ class_indicator(
                trained.neuron_labels
            )
            assert np.array_equal(result.spike_counts, spike_counts)
            assert np.array_equal(
                result.predictions, np.argmax(votes, axis=1).astype(np.int64)
            )


# --------------------------------------------------------------------- #
# training-layer behaviour
# --------------------------------------------------------------------- #
class TestPerModelTraining:
    def _train(self, model, vectorized, mode="spiking_wta"):
        dataset = SyntheticMNIST().generate(
            n_samples=12, rng=9, classes=[0, 1, 2]
        )
        runner = TrainingRunner(
            zoo_config(model),
            TrainingConfig(
                epochs=1, learning_mode=mode, label_assignment_mode="fast"
            ),
        )
        return runner.train(dataset, rng=5, vectorized=vectorized)

    @pytest.mark.parametrize("model", MODELS)
    def test_vectorized_equals_sequential_spiking_wta(self, model):
        vectorized = self._train(model, vectorized=True)
        sequential = self._train(model, vectorized=False)
        assert np.array_equal(vectorized.weights, sequential.weights)
        assert np.array_equal(vectorized.theta, sequential.theta)
        assert np.array_equal(vectorized.neuron_labels, sequential.neuron_labels)

    @pytest.mark.parametrize("model", ["cuba_lif", "fixed_point_lif"])
    def test_pairwise_stdp_rejects_non_lif(self, model):
        dataset = SyntheticMNIST().generate(n_samples=4, rng=9)
        runner = TrainingRunner(
            zoo_config(model),
            TrainingConfig(epochs=1, learning_mode="pairwise_stdp"),
        )
        with pytest.raises(ValueError, match="pairwise_stdp"):
            runner.train(dataset, rng=5)

    def test_models_produce_distinct_dynamics(self, zoo_dataset, labels):
        """The zoo is not a rename: each model really changes the spikes."""
        counts = {}
        for model in MODELS:
            result = InferenceEngine(
                build_network(zoo_config(model)), labels
            ).evaluate(zoo_dataset, rng=np.random.default_rng(7), batch_size=4)
            counts[model] = result.spike_counts
        assert not np.array_equal(counts["lif"], counts["cuba_lif"])
        assert not np.array_equal(counts["lif"], counts["fixed_point_lif"])


# --------------------------------------------------------------------- #
# snapshot + serving-registry round-trips
# --------------------------------------------------------------------- #
class TestSnapshotRoundTrip:
    def test_non_default_model_round_trips(self, tmp_path):
        trained = handmade_model("cuba_lif", encoding="ttfs")
        trained.save(tmp_path / "zoo")
        loaded = TrainedModel.load(tmp_path / "zoo")
        assert loaded.network_config.neuron_model == "cuba_lif"
        assert loaded.network_config.encoding == "ttfs"
        assert np.array_equal(loaded.weights, trained.weights)

    def test_pre_zoo_sidecar_loads_as_default_lif(self, tmp_path):
        """Snapshots written before the zoo carry no model/encoding keys."""
        handmade_model(DEFAULT_NEURON_MODEL).save(tmp_path / "legacy")
        sidecar_path = tmp_path / "legacy.json"
        metadata = load_json(sidecar_path)
        del metadata["network_config"]["neuron_model"]
        del metadata["network_config"]["encoding"]
        save_json(metadata, sidecar_path)
        loaded = TrainedModel.load(tmp_path / "legacy")
        assert loaded.network_config.neuron_model == DEFAULT_NEURON_MODEL
        assert loaded.network_config.encoding == DEFAULT_ENCODING

    def test_registry_entry_carries_model_and_encoding(self, tmp_path):
        registry = ModelRegistry(tmp_path / "models")
        entry = registry.register(
            handmade_model("fixed_point_lif", encoding="ttfs"), "zoo-model"
        )
        assert entry.neuron_model == "fixed_point_lif"
        assert entry.encoding == "ttfs"
        description = entry.to_dict()
        assert description["neuron_model"] == "fixed_point_lif"
        assert description["encoding"] == "ttfs"
        assert registry.load("zoo-model").network_config.neuron_model == (
            "fixed_point_lif"
        )

    def test_registry_defaults_for_pre_zoo_snapshot(self, tmp_path):
        registry = ModelRegistry(tmp_path / "models")
        registry.register(handmade_model(DEFAULT_NEURON_MODEL), "legacy-model")
        sidecar_path = tmp_path / "models" / "legacy-model.json"
        metadata = load_json(sidecar_path)
        del metadata["network_config"]["neuron_model"]
        del metadata["network_config"]["encoding"]
        save_json(metadata, sidecar_path)
        fresh = ModelRegistry(tmp_path / "models")
        entry = fresh.entry("legacy-model")
        assert entry.neuron_model == DEFAULT_NEURON_MODEL
        assert entry.encoding == DEFAULT_ENCODING


# --------------------------------------------------------------------- #
# campaign-layer serialization and grid axes
# --------------------------------------------------------------------- #
class TestExperimentConfigZoo:
    def test_defaults_keep_historical_label_and_dict(self):
        config = ExperimentConfig(workload="mnist", n_neurons=100)
        assert config.label() == "mnist/N100"
        data = config.to_dict()
        assert "model" not in data
        assert "encoding" not in data

    def test_non_default_label_and_dict(self):
        config = ExperimentConfig(
            workload="mnist", n_neurons=100, model="cuba_lif", encoding="ttfs"
        )
        assert config.label() == "mnist/N100/cuba_lif+ttfs"
        data = config.to_dict()
        assert data["model"] == "cuba_lif"
        assert data["encoding"] == "ttfs"

    def test_single_axis_label(self):
        assert (
            ExperimentConfig(n_neurons=100, model="fixed_point_lif").label()
            == "mnist/N100/fixed_point_lif"
        )
        assert (
            ExperimentConfig(n_neurons=100, encoding="ttfs").label()
            == "mnist/N100/ttfs"
        )

    @pytest.mark.parametrize("model,encoding", [
        (DEFAULT_NEURON_MODEL, DEFAULT_ENCODING),
        ("cuba_lif", "ttfs"),
    ])
    def test_dict_round_trip(self, model, encoding):
        config = ExperimentConfig(n_neurons=50, model=model, encoding=encoding)
        assert ExperimentConfig.from_dict(config.to_dict()) == config

    def test_unknown_names_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown neuron model"):
            ExperimentConfig(model="bogus")
        with pytest.raises(ValueError, match="unknown encoding"):
            ExperimentConfig(encoding="bogus")

    def test_network_config_carries_model_and_encoding(self):
        config = ExperimentConfig(model="cuba_lif", encoding="ttfs")
        network_config = config.network_config()
        assert network_config.neuron_model == "cuba_lif"
        assert network_config.encoding == "ttfs"


class TestCampaignGridAxes:
    def _grid(self, models=None, encodings=None):
        return CampaignSpec.grid(
            name="zoo",
            workloads=["mnist"],
            network_sizes=[16],
            fault_rates=[1e-2],
            technique_kinds=[MitigationKind.NO_MITIGATION],
            base=ExperimentConfig(
                n_train=48, n_test=16, timesteps=TIMESTEPS, epochs=1
            ),
            models=models,
            encodings=encodings,
            n_trials=1,
        )

    def test_default_grid_has_single_default_cell(self):
        spec = self._grid()
        assert len(spec.experiments) == 1
        assert spec.experiments[0].model == DEFAULT_NEURON_MODEL
        assert spec.experiments[0].encoding == DEFAULT_ENCODING

    def test_models_times_encodings_cross_product(self):
        spec = self._grid(models=list(MODELS), encodings=list(ENCODINGS))
        assert len(spec.experiments) == len(MODELS) * len(ENCODINGS)
        combos = {
            (experiment.model, experiment.encoding)
            for experiment in spec.experiments
        }
        assert combos == {
            (model, encoding) for model in MODELS for encoding in ENCODINGS
        }
        labels = [experiment.label() for experiment in spec.experiments]
        assert len(set(labels)) == len(labels)

    def test_techniques_survive_model_axis(self):
        spec = self._grid(models=["lif", "cuba_lif"])
        assert [technique.kind for technique in spec.techniques] == [
            MitigationKind.NO_MITIGATION
        ]
        assert len(spec.experiment_keys) == 2
