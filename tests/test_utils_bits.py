"""Unit and property tests for :mod:`repro.utils.bits`."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.bits import (
    bits_to_int,
    count_set_bits,
    flip_bit,
    flip_bits,
    flip_bits_in_array,
    int_to_bits,
)


class TestIntBitsConversion:
    def test_int_to_bits_little_endian(self):
        assert int_to_bits(5, bit_width=4).tolist() == [1, 0, 1, 0]

    def test_bits_to_int_roundtrip_example(self):
        assert bits_to_int([1, 0, 1, 0]) == 5

    def test_zero(self):
        assert int_to_bits(0, bit_width=8).tolist() == [0] * 8

    def test_all_ones(self):
        assert bits_to_int([1] * 8) == 255

    def test_value_out_of_range_raises(self):
        with pytest.raises(ValueError):
            int_to_bits(256, bit_width=8)

    def test_negative_value_raises(self):
        with pytest.raises(ValueError):
            int_to_bits(-1, bit_width=8)

    def test_bad_bit_width_raises(self):
        with pytest.raises(ValueError):
            int_to_bits(1, bit_width=0)

    def test_non_binary_bits_raise(self):
        with pytest.raises(ValueError):
            bits_to_int([0, 2, 1])

    @given(value=st.integers(min_value=0, max_value=255))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, value):
        assert bits_to_int(int_to_bits(value, bit_width=8)) == value


class TestFlipBit:
    def test_flip_sets_bit(self):
        assert flip_bit(0, 3, bit_width=8) == 8

    def test_flip_clears_bit(self):
        assert flip_bit(8, 3, bit_width=8) == 0

    def test_flip_twice_is_identity(self):
        assert flip_bit(flip_bit(42, 5), 5) == 42

    def test_out_of_range_position_raises(self):
        with pytest.raises(ValueError):
            flip_bit(0, 8, bit_width=8)

    def test_flip_bits_multiple_positions(self):
        assert flip_bits(0, [0, 1, 2], bit_width=8) == 7

    @given(
        value=st.integers(min_value=0, max_value=255),
        position=st.integers(min_value=0, max_value=7),
    )
    @settings(max_examples=50, deadline=None)
    def test_flip_changes_exactly_one_bit(self, value, position):
        flipped = flip_bit(value, position, bit_width=8)
        assert flipped != value
        assert count_set_bits(np.array([value ^ flipped]))[0] == 1


class TestFlipBitsInArray:
    def test_flips_selected_registers(self):
        values = np.array([0, 1, 2, 3], dtype=np.int64)
        out = flip_bits_in_array(values, np.array([0, 2]), np.array([0, 1]))
        assert out.tolist() == [1, 1, 0, 3]

    def test_original_untouched(self):
        values = np.array([7], dtype=np.int64)
        flip_bits_in_array(values, np.array([0]), np.array([0]))
        assert values[0] == 7

    def test_repeated_strike_same_bit_cancels(self):
        values = np.array([0], dtype=np.int64)
        out = flip_bits_in_array(values, np.array([0, 0]), np.array([3, 3]))
        assert out[0] == 0

    def test_repeated_strike_different_bits_compose(self):
        values = np.array([0], dtype=np.int64)
        out = flip_bits_in_array(values, np.array([0, 0]), np.array([0, 1]))
        assert out[0] == 3

    def test_preserves_shape(self):
        values = np.arange(12, dtype=np.int64).reshape(3, 4)
        out = flip_bits_in_array(values, np.array([5]), np.array([7]))
        assert out.shape == (3, 4)
        assert out[1, 1] == values[1, 1] ^ 128

    def test_index_out_of_range_raises(self):
        with pytest.raises(IndexError):
            flip_bits_in_array(
                np.array([0], dtype=np.int64), np.array([1]), np.array([0])
            )

    def test_bit_out_of_range_raises(self):
        with pytest.raises(ValueError):
            flip_bits_in_array(
                np.array([0], dtype=np.int64), np.array([0]), np.array([8])
            )

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            flip_bits_in_array(
                np.array([0], dtype=np.int64), np.array([0, 0]), np.array([1])
            )

    def test_float_array_rejected(self):
        with pytest.raises(TypeError):
            flip_bits_in_array(np.array([0.5]), np.array([0]), np.array([0]))

    @given(
        data=st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=20),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_double_injection_restores_original(self, data, seed):
        """Applying the same fault map twice must restore the registers."""
        values = np.array(data, dtype=np.int64)
        generator = np.random.default_rng(seed)
        n_faults = generator.integers(1, 2 * len(data) + 1)
        indices = generator.integers(0, len(data), size=n_faults)
        bits = generator.integers(0, 8, size=n_faults)
        once = flip_bits_in_array(values, indices, bits)
        twice = flip_bits_in_array(once, indices, bits)
        assert np.array_equal(twice, values)


class TestCountSetBits:
    def test_known_values(self):
        assert count_set_bits(np.array([0, 1, 3, 255])).tolist() == [0, 1, 2, 8]

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            count_set_bits(np.array([-1]))

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            count_set_bits(np.array([1.0]))
