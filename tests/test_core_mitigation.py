"""Tests for the mitigation techniques and the SoftSNN methodology facade."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bound_and_protect import BnPVariant
from repro.core.methodology import SoftSNNMethodology
from repro.core.mitigation import (
    BnPTechnique,
    NoMitigation,
    ReExecutionTMR,
    build_technique,
)
from repro.faults.fault_map import FaultMapGenerator
from repro.faults.models import ComputeEngineFaultConfig, NeuronFaultType
from repro.hardware.enhancements import MitigationKind


@pytest.fixture(scope="module")
def catastrophic_fault_map(trained_model):
    """A fault map with many faulty Vmem-reset neurons plus register flips.

    This is the scenario the paper's Fig. 13 shows at high fault rates: the
    unmitigated network collapses while BnP recovers most of the accuracy.
    """
    network = trained_model.build_network(rng=0)
    generator = FaultMapGenerator(
        network.synapses.shape, quantizer=network.synapses.quantizer
    )
    rng = np.random.default_rng(77)
    fault_map = generator.generate(
        ComputeEngineFaultConfig.synapses_only(0.1), rng=rng
    )
    # Force a third of the neurons into the catastrophic faulty-reset mode.
    n_neurons = trained_model.n_neurons
    fault_map.neuron_faults.extend(
        (index, NeuronFaultType.VMEM_RESET) for index in range(0, n_neurons, 3)
    )
    return fault_map


class TestNoMitigation:
    def test_clean_evaluation_matches_model_quality(self, trained_model, small_split):
        _, test_set = small_split
        result = NoMitigation().evaluate(trained_model, test_set, rng=0)
        assert result.n_samples == len(test_set)
        assert result.accuracy_percent > 40.0  # five-class problem, chance is 20 %

    def test_faults_degrade_accuracy(
        self, trained_model, small_split, catastrophic_fault_map
    ):
        _, test_set = small_split
        clean = NoMitigation().evaluate(trained_model, test_set, rng=1)
        faulty = NoMitigation().evaluate(
            trained_model,
            test_set,
            fault_config=ComputeEngineFaultConfig.full_compute_engine(0.1),
            rng=1,
            fault_map=catastrophic_fault_map,
        )
        assert faulty.accuracy_percent < clean.accuracy_percent - 15.0

    def test_model_is_not_mutated(self, trained_model, small_split):
        _, test_set = small_split
        weights_before = trained_model.weights.copy()
        NoMitigation().evaluate(
            trained_model,
            test_set,
            fault_config=ComputeEngineFaultConfig.full_compute_engine(0.1),
            rng=2,
        )
        assert np.array_equal(trained_model.weights, weights_before)


class TestReExecutionTMR:
    def test_recovers_accuracy_under_faults(
        self, trained_model, small_split, catastrophic_fault_map
    ):
        _, test_set = small_split
        config = ComputeEngineFaultConfig.full_compute_engine(0.1)
        unmitigated = NoMitigation().evaluate(
            trained_model, test_set, config, rng=3, fault_map=catastrophic_fault_map
        )
        tmr = ReExecutionTMR().evaluate(
            trained_model, test_set, config, rng=3, fault_map=catastrophic_fault_map
        )
        assert tmr.accuracy_percent > unmitigated.accuracy_percent

    def test_majority_vote_logic(self):
        votes = ReExecutionTMR._majority_vote(
            [np.array([1, 2, 3]), np.array([1, 4, 3]), np.array([5, 4, 0])]
        )
        # Sample 0: majority 1; sample 1: majority 4; sample 2: tie -> first run (3).
        assert votes.tolist() == [1, 4, 3]

    def test_even_execution_count_rejected(self):
        with pytest.raises(ValueError):
            ReExecutionTMR(n_executions=2)

    def test_reexposure_fraction_validation(self):
        with pytest.raises(ValueError):
            ReExecutionTMR(reexposure_fraction=1.5)

    def test_kind_is_re_execution(self):
        assert ReExecutionTMR().kind == MitigationKind.RE_EXECUTION


class TestBnPTechniques:
    @pytest.mark.parametrize("variant", list(BnPVariant))
    def test_bnp_recovers_accuracy_under_faults(
        self, trained_model, small_split, catastrophic_fault_map, variant
    ):
        """The headline claim: BnP keeps accuracy close to clean without re-execution."""
        _, test_set = small_split
        config = ComputeEngineFaultConfig.full_compute_engine(0.1)
        clean = NoMitigation().evaluate(trained_model, test_set, rng=4)
        unmitigated = NoMitigation().evaluate(
            trained_model, test_set, config, rng=4, fault_map=catastrophic_fault_map
        )
        technique = BnPTechnique(variant)
        protected = technique.evaluate(
            trained_model, test_set, config, rng=4, fault_map=catastrophic_fault_map
        )
        assert protected.accuracy_percent > unmitigated.accuracy_percent
        # Degradation versus clean stays bounded (the paper reports < 3 % at
        # full scale; this 20-neuron, 15-sample configuration allows a wider
        # gap — each misclassified sample costs 6.7 points).
        assert protected.accuracy_percent >= clean.accuracy_percent - 27.0
        # The neuron protection must actually have fired for the stuck neurons.
        assert technique.last_protection is not None
        assert technique.last_protection.n_protected > 0

    def test_bounding_rule_derivation(self, trained_model):
        technique = BnPTechnique(BnPVariant.BNP3)
        bounding = technique.bounding_for(trained_model)
        assert bounding.threshold == trained_model.clean_max_weight
        assert bounding.substitute == trained_model.clean_most_probable_weight

    def test_bounded_count_tracked(self, trained_model, small_split, catastrophic_fault_map):
        _, test_set = small_split
        technique = BnPTechnique(BnPVariant.BNP1)
        technique.evaluate(
            trained_model,
            test_set.subset(np.arange(3)),
            ComputeEngineFaultConfig.synapses_only(0.1),
            rng=5,
            fault_map=catastrophic_fault_map,
        )
        assert technique.last_bounded_count > 0

    def test_clean_inference_is_barely_affected(self, trained_model, small_split):
        """With no faults, BnP must not hurt accuracy much (safe weights pass through)."""
        _, test_set = small_split
        clean = NoMitigation().evaluate(trained_model, test_set, rng=6)
        for variant in (BnPVariant.BNP2, BnPVariant.BNP3):
            protected = BnPTechnique(variant).evaluate(trained_model, test_set, rng=6)
            assert abs(protected.accuracy_percent - clean.accuracy_percent) <= 10.0

    def test_invalid_variant_rejected(self):
        with pytest.raises(TypeError):
            BnPTechnique("bnp1")
        with pytest.raises(ValueError):
            BnPTechnique(BnPVariant.BNP1, protection_trigger_cycles=0)


class TestBuildTechnique:
    @pytest.mark.parametrize(
        "kind, expected_type",
        [
            (MitigationKind.NO_MITIGATION, NoMitigation),
            (MitigationKind.RE_EXECUTION, ReExecutionTMR),
            (MitigationKind.BNP1, BnPTechnique),
            (MitigationKind.BNP2, BnPTechnique),
            (MitigationKind.BNP3, BnPTechnique),
        ],
    )
    def test_factory_dispatch(self, kind, expected_type):
        technique = build_technique(kind)
        assert isinstance(technique, expected_type)
        assert technique.kind == kind

    def test_factory_forwards_kwargs(self):
        technique = build_technique(MitigationKind.RE_EXECUTION, n_executions=5)
        assert technique.n_executions == 5

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            build_technique("tmr")


class TestSoftSNNMethodology:
    def test_deploy_produces_consistent_artifacts(self, trained_model):
        methodology = SoftSNNMethodology(trained_model, variant=BnPVariant.BNP3)
        deployment = methodology.deploy()
        assert deployment.variant == BnPVariant.BNP3
        assert deployment.bounding.threshold == trained_model.clean_max_weight
        assert deployment.technique.kind == MitigationKind.BNP3
        assert deployment.hardware_overheads["area"] == pytest.approx(1.18, abs=0.01)
        assert deployment.hardware_overheads["latency"] <= 1.07

    def test_protected_inference_runs(self, trained_model, small_split):
        _, test_set = small_split
        methodology = SoftSNNMethodology(trained_model, variant=BnPVariant.BNP1)
        result = methodology.protected_inference(
            test_set.subset(np.arange(5)),
            fault_config=ComputeEngineFaultConfig.full_compute_engine(0.05),
            rng=0,
        )
        assert result.n_samples == 5

    def test_hardware_report_covers_all_techniques(self, trained_model):
        report = SoftSNNMethodology(trained_model).hardware_report()
        assert set(report) == {kind.value for kind in MitigationKind.all_kinds()}
        assert report["re_execution"]["latency"] == pytest.approx(3.0)

    def test_invalid_variant_rejected(self, trained_model):
        with pytest.raises(TypeError):
            SoftSNNMethodology(trained_model, variant="bnp1")
