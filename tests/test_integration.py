"""End-to-end integration tests reproducing the paper's qualitative claims.

Each test exercises the full pipeline — synthetic data, unsupervised
training, 8-bit deployment, fault injection, mitigation, hardware costing —
and asserts the *shape* of the paper's headline results at a scaled-down
size.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bound_and_protect import BnPVariant
from repro.core.mitigation import BnPTechnique, NoMitigation, ReExecutionTMR
from repro.eval.experiment import ExperimentConfig, ExperimentRunner
from repro.eval.overheads import overhead_tables_for_sizes
from repro.eval.sweep import FaultRateSweep
from repro.faults.models import ComputeEngineFaultConfig, NeuronFaultType
from repro.hardware.enhancements import MitigationKind


@pytest.fixture(scope="module")
def prepared():
    """One moderately sized prepared experiment shared by the integration tests."""
    runner = ExperimentRunner(root_seed=0)
    return runner.prepare(
        ExperimentConfig(
            workload="mnist",
            n_neurons=60,
            n_train=150,
            n_test=40,
            timesteps=100,
            epochs=2,
        )
    )


class TestHeadlineAccuracyClaim:
    """Fig. 13: BnP ~ re-execution >> no mitigation at high fault rates."""

    def test_mitigation_ordering_at_high_fault_rate(self, prepared):
        techniques = [
            NoMitigation(),
            ReExecutionTMR(),
            BnPTechnique(BnPVariant.BNP1),
            BnPTechnique(BnPVariant.BNP3),
        ]
        sweep = FaultRateSweep(prepared.model, prepared.test_set, techniques)
        result = sweep.run(fault_rates=[0.1], rng=21, label="integration")

        no_mit = result.techniques[MitigationKind.NO_MITIGATION].accuracies[0]
        tmr = result.techniques[MitigationKind.RE_EXECUTION].accuracies[0]
        bnp1 = result.techniques[MitigationKind.BNP1].accuracies[0]
        bnp3 = result.techniques[MitigationKind.BNP3].accuracies[0]

        # The unprotected engine collapses; every mitigation recovers most of it.
        assert no_mit < result.clean_accuracy - 20.0
        for mitigated in (tmr, bnp1, bnp3):
            assert mitigated > no_mit + 15.0
            assert mitigated >= result.clean_accuracy - 15.0

    def test_low_fault_rates_are_benign(self, prepared):
        sweep = FaultRateSweep(
            prepared.model, prepared.test_set, [NoMitigation()], n_trials=1
        )
        result = sweep.run(fault_rates=[1e-4], rng=22)
        accuracy = result.techniques[MitigationKind.NO_MITIGATION].accuracies[0]
        assert accuracy >= result.clean_accuracy - 10.0


class TestFaultTypeClaim:
    """Fig. 10(a): only faulty 'Vmem reset' is catastrophic."""

    def test_reset_faults_dominate_degradation(self, prepared):
        baseline = NoMitigation().evaluate(
            prepared.model, prepared.test_set, rng=30
        ).accuracy_percent
        accuracies = {}
        for fault_type in NeuronFaultType.all_types():
            config = ComputeEngineFaultConfig.neurons_only(0.5, fault_type=fault_type)
            accuracies[fault_type] = (
                NoMitigation()
                .evaluate(prepared.model, prepared.test_set, config, rng=30)
                .accuracy_percent
            )
        reset_drop = baseline - accuracies[NeuronFaultType.VMEM_RESET]
        other_drops = [
            baseline - accuracies[ft]
            for ft in NeuronFaultType.all_types()
            if ft != NeuronFaultType.VMEM_RESET
        ]
        assert reset_drop > max(other_drops)
        assert reset_drop > 20.0


class TestWeightBoundingClaim:
    """Fig. 9: faults push weights beyond the clean maximum; bounding removes them."""

    def test_bounded_effective_weights_stay_in_safe_range(self, prepared):
        model = prepared.model
        network = model.build_network(rng=0)
        from repro.faults.injector import FaultInjector

        FaultInjector(network).inject(
            ComputeEngineFaultConfig.synapses_only(0.1), rng=31
        )
        faulty = network.synapses.weights
        assert faulty.max() > model.clean_max_weight

        technique = BnPTechnique(BnPVariant.BNP3)
        bounded = technique.bounding_for(model).apply(faulty)
        assert bounded.max() <= model.clean_max_weight + 1e-9


class TestOverheadClaims:
    """Fig. 3(b) / Fig. 14: 3x latency & energy for TMR, small overheads for BnP."""

    def test_savings_match_paper_scale(self):
        tables = overhead_tables_for_sizes(network_sizes=[400, 900])
        latency = tables["latency"]
        energy = tables["energy"]
        # Up to 3x latency and ~2.3x energy saved versus re-execution.
        assert max(
            latency.savings_versus(MitigationKind.BNP1, MitigationKind.RE_EXECUTION)
        ) == pytest.approx(3.0)
        assert max(
            energy.savings_versus(MitigationKind.BNP3, MitigationKind.RE_EXECUTION)
        ) >= 1.8
        # BnP latency overhead stays below 1.06x of the same-size baseline.
        for index in range(2):
            ratio = latency.row(MitigationKind.BNP2)[index] / latency.row(
                MitigationKind.NO_MITIGATION
            )[index]
            assert ratio <= 1.061


class TestReproducibility:
    def test_full_pipeline_is_deterministic(self, prepared):
        def run_once():
            technique = BnPTechnique(BnPVariant.BNP2)
            return technique.evaluate(
                prepared.model,
                prepared.test_set.subset(np.arange(10)),
                ComputeEngineFaultConfig.full_compute_engine(0.05),
                rng=55,
            ).predictions

        assert np.array_equal(run_once(), run_once())
