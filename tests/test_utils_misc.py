"""Tests for RNG management, serialization, validation and logging helpers."""

from __future__ import annotations

import logging

import numpy as np
import pytest

from repro.utils.logging import configure_logging, get_logger
from repro.utils.rng import SeedSequenceFactory, resolve_rng, spawn_rngs
from repro.utils.serialization import (
    append_jsonl,
    load_json,
    load_npz,
    numpy_to_native,
    read_jsonl,
    save_json,
    save_npz,
)
from repro.utils.validation import (
    check_fraction,
    check_in_choices,
    check_non_negative,
    check_positive,
    check_probability,
    check_shape,
)


class TestResolveRng:
    def test_none_returns_generator(self):
        assert isinstance(resolve_rng(None), np.random.Generator)

    def test_seed_is_deterministic(self):
        assert resolve_rng(5).random() == resolve_rng(5).random()

    def test_generator_passthrough(self):
        generator = np.random.default_rng(1)
        assert resolve_rng(generator) is generator

    def test_negative_seed_raises(self):
        with pytest.raises(ValueError):
            resolve_rng(-1)

    def test_bad_type_raises(self):
        with pytest.raises(TypeError):
            resolve_rng("seed")


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 4)) == 4

    def test_children_differ(self):
        children = spawn_rngs(0, 2)
        assert children[0].random() != children[1].random()

    def test_deterministic_from_seed(self):
        a = [g.random() for g in spawn_rngs(3, 3)]
        b = [g.random() for g in spawn_rngs(3, 3)]
        assert a == b

    def test_zero_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, 0)


class TestSeedSequenceFactory:
    def test_same_purpose_same_seed(self):
        factory = SeedSequenceFactory(42)
        assert factory.seed_for("a/b") == factory.seed_for("a/b")

    def test_different_purposes_differ(self):
        factory = SeedSequenceFactory(42)
        assert factory.seed_for("a") != factory.seed_for("b")

    def test_root_seed_changes_seeds(self):
        assert (
            SeedSequenceFactory(1).seed_for("x") != SeedSequenceFactory(2).seed_for("x")
        )

    def test_child_namespacing(self):
        factory = SeedSequenceFactory(7)
        child = factory.child("fig13")
        assert child.seed_for("x") != factory.seed_for("x")

    def test_rng_for_is_deterministic(self):
        factory = SeedSequenceFactory(5)
        assert factory.rng_for("p").random() == factory.rng_for("p").random()

    def test_empty_purpose_raises(self):
        with pytest.raises(ValueError):
            SeedSequenceFactory(0).seed_for("")

    def test_negative_root_raises(self):
        with pytest.raises(ValueError):
            SeedSequenceFactory(-1)


class TestSerialization:
    def test_numpy_to_native_scalars(self):
        converted = numpy_to_native(
            {"a": np.int64(3), "b": np.float64(0.5), "c": np.bool_(True)}
        )
        assert converted == {"a": 3, "b": 0.5, "c": True}
        assert all(not isinstance(v, np.generic) for v in converted.values())

    def test_numpy_to_native_nested(self):
        converted = numpy_to_native({"x": [np.arange(3), (np.float32(1.5),)]})
        assert converted == {"x": [[0, 1, 2], [1.5]]}

    def test_save_and_load_roundtrip(self, tmp_path):
        payload = {"accuracy": np.float64(91.2), "rates": np.array([1e-3, 1e-2])}
        path = save_json(payload, tmp_path / "out" / "results.json")
        assert path.exists()
        loaded = load_json(path)
        assert loaded["accuracy"] == pytest.approx(91.2)
        assert loaded["rates"] == [1e-3, 1e-2]

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_json(tmp_path / "nope.json")


class TestAtomicWrites:
    """save_json / save_npz must be atomic: temp file + rename, no residue."""

    def test_save_json_leaves_no_temp_files(self, tmp_path):
        save_json({"a": 1}, tmp_path / "out.json")
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]

    def test_save_npz_leaves_no_temp_files(self, tmp_path):
        path = save_npz({"w": np.arange(4)}, tmp_path / "model")
        assert path.name == "model.npz"
        assert [p.name for p in tmp_path.iterdir()] == ["model.npz"]
        assert np.array_equal(load_npz(path)["w"], np.arange(4))

    def test_failed_json_write_preserves_previous_file(self, tmp_path):
        target = tmp_path / "snapshot.json"
        save_json({"version": 1}, target)

        class Unserialisable:
            pass

        with pytest.raises(TypeError):
            save_json({"bad": Unserialisable()}, target)
        # The old complete file survives and no temp residue is left.
        assert load_json(target) == {"version": 1}
        assert [p.name for p in tmp_path.iterdir()] == ["snapshot.json"]

    def test_overwrite_is_complete_replacement(self, tmp_path):
        target = tmp_path / "model"
        save_npz({"w": np.zeros(1000)}, target)
        save_npz({"w": np.ones(3)}, target)
        assert np.array_equal(load_npz(tmp_path / "model.npz")["w"], np.ones(3))


class TestReadJsonlCorruption:
    """Pin down read_jsonl's handling of torn tails vs mid-file corruption."""

    def _write_records(self, path, records):
        for record in records:
            append_jsonl(record, path)

    def test_round_trip(self, tmp_path):
        path = tmp_path / "log.jsonl"
        self._write_records(path, [{"i": 0}, {"i": 1}])
        assert read_jsonl(path) == [{"i": 0}, {"i": 1}]

    def test_torn_tail_is_dropped(self, tmp_path):
        path = tmp_path / "log.jsonl"
        self._write_records(path, [{"i": 0}, {"i": 1}])
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"i": 2, "torn')  # writer killed mid-append
        assert read_jsonl(path) == [{"i": 0}, {"i": 1}]

    def test_torn_tail_raises_when_not_tolerated(self, tmp_path):
        path = tmp_path / "log.jsonl"
        self._write_records(path, [{"i": 0}])
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"torn')
        with pytest.raises(ValueError, match="corrupt JSONL record"):
            read_jsonl(path, tolerate_truncated_tail=False)

    def test_corrupt_mid_file_record_always_raises(self, tmp_path):
        """Mid-file corruption is never skipped — it raises with the line.

        A malformed line *before* the tail cannot be the footprint of an
        interrupted append (later appends completed), so it indicates real
        corruption; read_jsonl refuses to silently drop it even with
        ``tolerate_truncated_tail=True``.
        """
        path = tmp_path / "log.jsonl"
        self._write_records(path, [{"i": 0}, {"i": 1}, {"i": 2}])
        lines = path.read_text().splitlines()
        lines[1] = '{"i": 1, "broken'
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match=r"log\.jsonl:2"):
            read_jsonl(path)
        with pytest.raises(ValueError, match=r"log\.jsonl:2"):
            read_jsonl(path, tolerate_truncated_tail=False)


class TestValidation:
    def test_check_positive_accepts(self):
        assert check_positive(0.1, "x") == pytest.approx(0.1)

    def test_check_positive_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive(0, "x")

    def test_check_non_negative_accepts_zero(self):
        assert check_non_negative(0, "x") == 0.0

    def test_check_non_negative_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative(-0.5, "x")

    def test_check_probability_bounds(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0
        with pytest.raises(ValueError):
            check_probability(1.1, "p")

    def test_check_fraction_excludes_zero(self):
        with pytest.raises(ValueError):
            check_fraction(0.0, "f")
        assert check_fraction(1.0, "f") == 1.0

    def test_check_in_choices(self):
        assert check_in_choices("a", "x", ["a", "b"]) == "a"
        with pytest.raises(ValueError):
            check_in_choices("c", "x", ["a", "b"])

    def test_check_shape_exact(self):
        array = np.zeros((3, 4))
        assert check_shape(array, (3, 4), "m") is not None

    def test_check_shape_wildcard(self):
        check_shape(np.zeros((3, 4)), (-1, 4), "m")

    def test_check_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            check_shape(np.zeros((3, 4)), (4, 3), "m")

    def test_check_shape_ndim_mismatch_raises(self):
        with pytest.raises(ValueError):
            check_shape(np.zeros(3), (3, 1), "m")


class TestLogging:
    def test_get_logger_namespacing(self):
        assert get_logger("snn.training").name == "repro.snn.training"
        assert get_logger().name == "repro"
        assert get_logger("repro.core").name == "repro.core"

    def test_configure_logging_idempotent(self):
        configure_logging(level=logging.WARNING)
        configure_logging(level=logging.WARNING)
        root = logging.getLogger("repro")
        own_handlers = [
            h for h in root.handlers if getattr(h, "_repro_handler", False)
        ]
        assert len(own_handlers) == 1
