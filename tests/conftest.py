"""Shared fixtures for the test suite.

All fixtures use deliberately tiny networks and datasets so the whole suite
runs in well under a minute; correctness of the algorithms does not depend
on scale, and the benchmark harness covers the larger configurations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic_mnist import SyntheticMNIST
from repro.data.datasets import Dataset, train_test_split
from repro.snn.network import NetworkConfig
from repro.snn.neuron import LIFParameters
from repro.snn.training import STDPTrainer, TrainingConfig


@pytest.fixture(scope="session")
def small_dataset() -> Dataset:
    """Sixty tiny synthetic-MNIST images over classes 0-4."""
    return SyntheticMNIST().generate(n_samples=60, rng=123, classes=[0, 1, 2, 3, 4])


@pytest.fixture(scope="session")
def small_split(small_dataset):
    """Train/test split of the small dataset."""
    return train_test_split(small_dataset, test_fraction=0.25, rng=7)


@pytest.fixture(scope="session")
def tiny_network_config() -> NetworkConfig:
    """A 784-input, 20-neuron, 60-timestep network configuration."""
    return NetworkConfig(
        n_inputs=784,
        n_neurons=20,
        timesteps=60,
        neuron_params=LIFParameters(),
    )


@pytest.fixture(scope="session")
def trained_model(tiny_network_config, small_split):
    """A small trained model shared by fault-injection and mitigation tests."""
    train_set, _ = small_split
    trainer = STDPTrainer(
        tiny_network_config,
        TrainingConfig(
            epochs=1, learning_mode="fast_wta", label_assignment_mode="fast"
        ),
    )
    return trainer.train(train_set, rng=99)


@pytest.fixture()
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(2024)
