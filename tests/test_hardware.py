"""Tests for the analytical hardware model (area, latency, energy)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.accelerator import AcceleratorModel
from repro.hardware.area import AreaModel
from repro.hardware.compute_engine import ComputeEngineConfig
from repro.hardware.energy import ActivityProfile, EnergyModel
from repro.hardware.enhancements import (
    BnPHardwareEnhancement,
    HardwareCostParameters,
    MitigationKind,
)
from repro.hardware.latency import LatencyModel


class TestComputeEngineConfig:
    def test_tiling_matches_paper_network_sizes(self):
        # These tile counts are what produce the paper's 1.0/2.0/3.5/5.0/7.5
        # latency scaling across N400..N3600 (Fig. 14a).
        expected = {400: 2, 900: 4, 1600: 7, 2500: 10, 3600: 15}
        for n_neurons, tiles in expected.items():
            config = ComputeEngineConfig(n_neurons=n_neurons)
            assert config.neuron_tiles == tiles
            assert config.input_tiles == 4  # 784 inputs / 256 rows

    def test_physical_inventory(self):
        config = ComputeEngineConfig()
        assert config.physical_synapses == 256 * 256
        assert config.physical_neurons == 256

    def test_with_network_size(self):
        config = ComputeEngineConfig(n_neurons=400).with_network_size(900)
        assert config.n_neurons == 900
        assert config.n_inputs == 784

    def test_validation(self):
        with pytest.raises(ValueError):
            ComputeEngineConfig(n_neurons=0)
        with pytest.raises(ValueError):
            ComputeEngineConfig(clock_frequency_mhz=0)


class TestEnhancementInventory:
    def test_no_mitigation_adds_nothing(self):
        inventory = BnPHardwareEnhancement.for_kind(MitigationKind.NO_MITIGATION)
        assert not inventory.adds_synapse_logic
        assert inventory.global_hardened_registers == 0

    def test_re_execution_adds_nothing(self):
        inventory = BnPHardwareEnhancement.for_kind(MitigationKind.RE_EXECUTION)
        assert not inventory.adds_synapse_logic
        assert not inventory.neuron_protection

    def test_bnp1_uses_zero_mask_and_one_register(self):
        inventory = BnPHardwareEnhancement.for_kind(MitigationKind.BNP1)
        assert inventory.comparator_per_synapse
        assert inventory.zero_mask_per_synapse
        assert not inventory.mux_per_synapse
        assert inventory.global_hardened_registers == 1
        assert inventory.neuron_protection

    def test_bnp2_and_bnp3_use_mux_and_two_registers(self):
        for kind in (MitigationKind.BNP2, MitigationKind.BNP3):
            inventory = BnPHardwareEnhancement.for_kind(kind)
            assert inventory.mux_per_synapse
            assert not inventory.zero_mask_per_synapse
            assert inventory.global_hardened_registers == 2

    def test_inventory_table_covers_all_kinds(self):
        table = BnPHardwareEnhancement.inventory_table()
        assert set(table) == set(MitigationKind.all_kinds())

    def test_cost_parameters_validation(self):
        with pytest.raises(ValueError):
            HardwareCostParameters(register_area_per_bit=-1.0)
        with pytest.raises(ValueError):
            HardwareCostParameters(hardening_area_factor=0.5)

    def test_bad_kind_rejected(self):
        with pytest.raises(TypeError):
            BnPHardwareEnhancement.for_kind("bnp1")


class TestAreaModel:
    def test_paper_area_overheads(self):
        """Fig. 14(c): 1.00 / 1.00 / 1.14 / 1.18 / 1.18."""
        table = AreaModel().overhead_table()
        assert table[MitigationKind.NO_MITIGATION] == pytest.approx(1.0)
        assert table[MitigationKind.RE_EXECUTION] == pytest.approx(1.0)
        assert table[MitigationKind.BNP1] == pytest.approx(1.14, abs=0.01)
        assert table[MitigationKind.BNP2] == pytest.approx(1.18, abs=0.01)
        assert table[MitigationKind.BNP3] == pytest.approx(1.18, abs=0.01)

    def test_synapse_array_dominates(self):
        breakdown = AreaModel().breakdown(MitigationKind.BNP1)
        assert breakdown.synapse_array > 10 * breakdown.neuron_array
        assert breakdown.global_registers < 0.001 * breakdown.synapse_array

    def test_breakdown_total_consistent(self):
        model = AreaModel()
        breakdown = model.breakdown(MitigationKind.BNP3)
        assert breakdown.total == pytest.approx(model.total_area(MitigationKind.BNP3))
        assert breakdown.enhancement_total > 0
        assert set(breakdown.as_dict()) >= {"synapse_array", "total"}

    def test_area_independent_of_logical_network_size(self):
        small = AreaModel(ComputeEngineConfig(n_neurons=400))
        large = AreaModel(ComputeEngineConfig(n_neurons=3600))
        assert small.total_area(MitigationKind.BNP1) == pytest.approx(
            large.total_area(MitigationKind.BNP1)
        )


class TestLatencyModel:
    def test_paper_network_scaling(self):
        """Fig. 14(a): no-mitigation latency 1.0 / 2.0 / 3.5 / 5.0 / 7.5."""
        reference = LatencyModel(ComputeEngineConfig(n_neurons=400))
        expected = {400: 1.0, 900: 2.0, 1600: 3.5, 2500: 5.0, 3600: 7.5}
        for n_neurons, value in expected.items():
            model = LatencyModel(ComputeEngineConfig(n_neurons=n_neurons))
            table = model.normalized_table(reference=reference)
            assert table[MitigationKind.NO_MITIGATION] == pytest.approx(value)

    def test_re_execution_is_three_times(self):
        table = LatencyModel().normalized_table()
        assert table[MitigationKind.RE_EXECUTION] == pytest.approx(3.0)

    def test_bnp_latency_overhead_small(self):
        table = LatencyModel().normalized_table()
        assert table[MitigationKind.BNP1] == pytest.approx(1.0)
        assert 1.0 < table[MitigationKind.BNP2] <= 1.061
        assert table[MitigationKind.BNP3] == table[MitigationKind.BNP2]

    def test_savings_vs_reexecution_about_3x(self):
        table = LatencyModel().normalized_table()
        assert table[MitigationKind.RE_EXECUTION] / table[MitigationKind.BNP1] >= 2.9

    def test_estimate_fields(self):
        estimate = LatencyModel().estimate(MitigationKind.RE_EXECUTION)
        assert estimate.executions == 3
        assert estimate.total_ns > 0
        assert estimate.normalized_to(estimate) == pytest.approx(1.0)

    def test_bad_kind_rejected(self):
        with pytest.raises(TypeError):
            LatencyModel().estimate("bnp1")


class TestEnergyModel:
    def test_paper_technique_overheads(self):
        """Fig. 14(b) at one size: 1.0 / 3.0 / 1.3 / 1.6 / 1.6."""
        table = EnergyModel().normalized_table()
        assert table[MitigationKind.NO_MITIGATION] == pytest.approx(1.0)
        assert table[MitigationKind.RE_EXECUTION] == pytest.approx(3.0)
        assert table[MitigationKind.BNP1] == pytest.approx(1.3, abs=0.02)
        assert table[MitigationKind.BNP2] == pytest.approx(1.6, abs=0.02)
        assert table[MitigationKind.BNP3] == pytest.approx(1.6, abs=0.02)

    def test_energy_savings_vs_reexecution(self):
        table = EnergyModel().normalized_table()
        savings = table[MitigationKind.RE_EXECUTION] / table[MitigationKind.BNP3]
        assert savings >= 1.8  # paper reports up to 2.3x

    def test_network_size_scaling_tracks_tiles(self):
        reference = EnergyModel(ComputeEngineConfig(n_neurons=400))
        model = EnergyModel(ComputeEngineConfig(n_neurons=900))
        table = model.normalized_table(reference=reference)
        assert table[MitigationKind.NO_MITIGATION] == pytest.approx(2.0)

    def test_event_driven_activity_reduces_energy(self):
        config = ComputeEngineConfig(n_neurons=400)
        model = EnergyModel(config)
        dense = model.energy(MitigationKind.NO_MITIGATION)
        sparse_activity = ActivityProfile.from_spike_counts(
            config, total_input_spikes=1000, n_samples=1
        )
        sparse = model.energy(MitigationKind.NO_MITIGATION, activity=sparse_activity)
        assert sparse < dense

    def test_activity_profile_validation(self):
        with pytest.raises(ValueError):
            ActivityProfile(synapse_accesses=-1, neuron_updates=0)
        with pytest.raises(ValueError):
            ActivityProfile.from_spike_counts(
                ComputeEngineConfig(), total_input_spikes=10, n_samples=0
            )

    @given(spikes=st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=20, deadline=None)
    def test_energy_monotone_in_activity_property(self, spikes):
        config = ComputeEngineConfig(n_neurons=400)
        model = EnergyModel(config)
        low = model.energy(
            MitigationKind.BNP1,
            activity=ActivityProfile.from_spike_counts(config, spikes),
        )
        high = model.energy(
            MitigationKind.BNP1,
            activity=ActivityProfile.from_spike_counts(config, spikes + 100),
        )
        assert high >= low


class TestAcceleratorModel:
    def test_report_all_covers_every_technique(self):
        reports = AcceleratorModel().report_all()
        assert set(reports) == set(MitigationKind.all_kinds())
        for report in reports.values():
            assert report.latency_ns > 0
            assert report.energy > 0
            assert report.area > 0
            assert set(report.as_dict()) == {"technique", "latency_ns", "energy", "area"}

    def test_for_network_size_changes_latency_not_area(self):
        base = AcceleratorModel(ComputeEngineConfig(n_neurons=400))
        bigger = base.for_network_size(3600)
        assert bigger.report(MitigationKind.NO_MITIGATION).latency_ns > base.report(
            MitigationKind.NO_MITIGATION
        ).latency_ns
        assert bigger.report(MitigationKind.NO_MITIGATION).area == pytest.approx(
            base.report(MitigationKind.NO_MITIGATION).area
        )

    def test_normalized_tables_consistent_with_submodels(self):
        model = AcceleratorModel()
        assert model.normalized_area() == model.area_model.overhead_table()
        assert model.normalized_latency() == model.latency_model.normalized_table()
