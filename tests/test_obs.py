"""Tests of the observability layer (``repro.obs``).

Pins the two external contracts: the Prometheus text exposition format
(0.0.4 — parseable series, escaped labels, cumulative monotone ``le``
buckets closed by ``+Inf``) and the histogram percentile estimator,
whose error against ``np.percentile`` must stay within one bucket width
by construction.  Also covers the kill switch, registry idempotency,
and span nesting/sink behaviour — the properties every instrumented
subsystem relies on.
"""

from __future__ import annotations

import json
import math
import re
import threading

import numpy as np
import pytest

from repro.obs import configure_trace
from repro.obs import metrics as obs_metrics
from repro.obs.metrics import (
    PROMETHEUS_CONTENT_TYPE,
    MetricsRegistry,
    log_buckets,
    set_enabled,
)
from repro.obs.trace import Tracer

# A text-format sample line: name{labels} value
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})? (?P<value>\S+)$"
)


def _parse_exposition(text: str):
    """Parse text format 0.0.4 into (types, samples); raise on bad lines."""
    types = {}
    samples = []
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            types[name] = kind
            continue
        match = _SAMPLE_RE.match(line)
        assert match is not None, f"unparseable sample line: {line!r}"
        samples.append(
            (match["name"], match["labels"] or "", float(match["value"]))
        )
    return types, samples


@pytest.fixture()
def registry() -> MetricsRegistry:
    return MetricsRegistry()


# --------------------------------------------------------------------- #
# registry basics
# --------------------------------------------------------------------- #
class TestRegistry:
    def test_counter_gauge_roundtrip(self, registry):
        requests = registry.counter("t_requests_total", "Requests.", ["mode"])
        requests.labels(mode="clean").inc()
        requests.labels(mode="clean").inc(2)
        requests.labels(mode="faulty").inc()
        assert registry.value("t_requests_total", mode="clean") == 3
        assert registry.value("t_requests_total", mode="faulty") == 1
        assert registry.value("t_requests_total", mode="absent") == 0.0

        depth = registry.gauge("t_depth", "Depth.")
        depth.set(5)
        depth.dec(2)
        assert depth.value == 3

    def test_families_are_idempotent(self, registry):
        first = registry.counter("t_total", "Help.", ["a"])
        again = registry.counter("t_total", "Help.", ["a"])
        assert first is again

    def test_kind_and_label_mismatches_raise(self, registry):
        registry.counter("t_total", "Help.", ["a"])
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("t_total", "Help.", ["a"])
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("t_total", "Help.", ["b"])

    def test_label_names_validated_at_lookup(self, registry):
        family = registry.counter("t_total", "Help.", ["a"])
        with pytest.raises(ValueError, match="expects labels"):
            family.labels(b="x")
        with pytest.raises(ValueError, match="is labeled"):
            family.inc()

    def test_invalid_metric_names_rejected(self, registry):
        for bad in ("", "9starts_with_digit", "has-dash", "has space"):
            with pytest.raises(ValueError, match="invalid metric name"):
                registry.counter(bad, "Help.")

    def test_counters_refuse_decrements(self, registry):
        counter = registry.counter("t_total", "Help.")
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)

    def test_counter_set_to_is_monotonic(self, registry):
        counter = registry.counter("t_total", "Help.")
        counter._unlabeled().set_to(10)
        counter._unlabeled().set_to(4)  # a source reset must not regress
        assert counter.value == 10

    def test_kill_switch_stops_recording(self, registry):
        counter = registry.counter("t_total", "Help.")
        histogram = registry.histogram("t_seconds", "Help.")
        try:
            assert set_enabled(False) is False
            counter.inc()
            histogram.observe(1.0)
            assert counter.value == 0
            assert histogram._unlabeled().count == 0
        finally:
            set_enabled(None)  # restore from the environment
        counter.inc()
        assert counter.value == 1

    def test_concurrent_increments_are_lossless(self, registry):
        counter = registry.counter("t_total", "Help.")
        child = counter._unlabeled()

        def hammer():
            for _ in range(1000):
                child.inc()

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8000

    def test_snapshot_is_json_ready(self, registry):
        registry.counter("t_total", "Help.", ["mode"]).labels(mode="a").inc()
        registry.histogram("t_seconds", "Help.").observe(0.01)
        snapshot = registry.snapshot()
        encoded = json.loads(json.dumps(snapshot))
        assert encoded["t_total"]["kind"] == "counter"
        assert encoded["t_total"]["series"]["mode=a"] == 1
        series = encoded["t_seconds"]["series"][""]
        assert series["count"] == 1
        assert series["min"] == series["max"] == 0.01
        assert series["buckets"]["+Inf"] == 1


# --------------------------------------------------------------------- #
# histograms
# --------------------------------------------------------------------- #
class TestHistogram:
    def test_log_buckets_shape(self):
        bounds = log_buckets(1e-3, 1.0, per_decade=2)
        assert bounds[0] == pytest.approx(1e-3)
        assert bounds[-1] >= 1.0
        assert all(b > a for a, b in zip(bounds, bounds[1:]))
        with pytest.raises(ValueError):
            log_buckets(0.0, 1.0)
        with pytest.raises(ValueError):
            log_buckets(1.0, 1.0)

    @pytest.mark.parametrize("q", [50, 95, 99])
    def test_percentiles_within_one_bucket_width(self, registry, q):
        """The estimator lands in the true percentile's bucket, so its
        error is bounded by that bucket's width."""
        rng = np.random.default_rng(7)
        samples = rng.lognormal(mean=-4.0, sigma=1.5, size=5000)
        histogram = registry.histogram(
            "t_seconds", "Help.", buckets=log_buckets(1e-5, 100.0, 4)
        )
        child = histogram._unlabeled()
        for value in samples:
            child.observe(value)
        truth = float(np.percentile(samples, q))
        estimate = child.percentile(q)
        bounds = histogram.buckets
        index = int(np.searchsorted(bounds, truth))
        lower = bounds[index - 1] if index > 0 else 0.0
        upper = bounds[index] if index < len(bounds) else math.inf
        width = upper - lower
        assert abs(estimate - truth) <= width
        # Both land in the same bucket.
        assert lower <= estimate <= upper

    def test_percentile_of_empty_and_single(self, registry):
        histogram = registry.histogram("t_seconds", "Help.")
        child = histogram._unlabeled()
        assert child.percentile(50) == 0.0
        child.observe(0.02)
        assert child.percentile(50) == pytest.approx(0.02, rel=0.8)
        assert child.count == 1
        assert child.sum == pytest.approx(0.02)

    def test_bad_buckets_rejected(self, registry):
        with pytest.raises(ValueError, match="strictly increasing"):
            registry.histogram("t_seconds", "Help.", buckets=[1.0, 1.0, 2.0])


# --------------------------------------------------------------------- #
# Prometheus exposition
# --------------------------------------------------------------------- #
class TestPrometheusRendering:
    def test_content_type_pinned(self):
        assert PROMETHEUS_CONTENT_TYPE == (
            "text/plain; version=0.0.4; charset=utf-8"
        )

    def test_exposition_parses(self, registry):
        registry.counter("t_total", "Requests.", ["mode"]).labels(
            mode="clean"
        ).inc(3)
        registry.gauge("t_depth", "Depth.").set(2.5)
        registry.histogram("t_seconds", "Latency.").observe(0.01)
        types, samples = _parse_exposition(registry.render_prometheus())
        assert types == {
            "t_total": "counter",
            "t_depth": "gauge",
            "t_seconds": "histogram",
        }
        by_name = {}
        for name, labels, value in samples:
            by_name.setdefault(name, []).append((labels, value))
        assert by_name["t_total"] == [('{mode="clean"}', 3.0)]
        assert by_name["t_depth"] == [("", 2.5)]
        assert by_name["t_seconds_count"] == [("", 1.0)]
        assert by_name["t_seconds_sum"] == [("", 0.01)]

    def test_label_values_escaped(self, registry):
        family = registry.counter("t_total", "Help.", ["path"])
        family.labels(path='a\\b"c\nd').inc()
        text = registry.render_prometheus()
        assert 't_total{path="a\\\\b\\"c\\nd"} 1' in text

    def test_help_text_escaped(self, registry):
        registry.counter("t_total", "line one\nline two \\ done").inc()
        text = registry.render_prometheus()
        assert "# HELP t_total line one\\nline two \\\\ done" in text

    def test_histogram_buckets_cumulative_and_closed(self, registry):
        histogram = registry.histogram(
            "t_seconds", "Help.", buckets=log_buckets(1e-3, 10.0, 2)
        )
        child = histogram._unlabeled()
        for value in (0.0005, 0.002, 0.002, 0.5, 1e9):  # incl. overflow
            child.observe(value)
        _, samples = _parse_exposition(registry.render_prometheus())
        buckets = [
            (labels, value)
            for name, labels, value in samples
            if name == "t_seconds_bucket"
        ]
        les = [
            float(labels.split('le="')[1].rstrip('"}').replace("+Inf", "inf"))
            for labels, _ in buckets
        ]
        counts = [value for _, value in buckets]
        assert les == sorted(les)
        assert counts == sorted(counts), "bucket counts must be cumulative"
        assert les[-1] == math.inf
        count = next(
            value for name, _, value in samples if name == "t_seconds_count"
        )
        assert counts[-1] == count == 5

    def test_families_without_samples_are_omitted(self, registry):
        registry.counter("t_never_used_total", "Help.", ["mode"])
        assert registry.render_prometheus() == "\n"


# --------------------------------------------------------------------- #
# spans
# --------------------------------------------------------------------- #
class TestTracing:
    def test_span_nesting_builds_parent_chain(self, registry):
        tracer = Tracer(registry=registry)
        events = []
        with tracer.span("outer") as outer:
            with tracer.span("inner", key="value") as inner:
                events.append(dict(inner))
            events.append(dict(outer))
        outer_event, inner_event = events[1], events[0]
        assert outer_event["parent_id"] is None
        assert inner_event["parent_id"] == outer_event["span_id"]
        assert inner_event["attributes"] == {"key": "value"}

    def test_span_durations_and_histogram(self, registry):
        tracer = Tracer(registry=registry)
        with tracer.span("timed"):
            pass
        family = registry.get("softsnn_span_seconds")
        child = family.labels(name="timed")
        assert child.count == 1
        assert child.sum >= 0.0

    def test_span_sink_appends_jsonl(self, tmp_path, registry):
        sink = tmp_path / "trace.jsonl"
        tracer = Tracer(sink_path=str(sink), registry=registry)
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        lines = [
            json.loads(line) for line in sink.read_text().splitlines()
        ]
        assert [event["name"] for event in lines] == ["b", "a"]  # exit order
        assert all("duration_ns" in event and "ts" in event for event in lines)
        assert lines[0]["parent_id"] == lines[1]["span_id"]

    def test_span_never_touches_rng(self, registry):
        """Spans must not consume from any RNG stream (bit-identity)."""
        rng = np.random.default_rng(3)
        before = rng.bit_generator.state
        tracer = Tracer(registry=registry)
        with tracer.span("rng-free"):
            pass
        assert rng.bit_generator.state == before
        state = np.random.get_state()
        with tracer.span("global-rng-free"):
            pass
        assert repr(np.random.get_state()) == repr(state)

    def test_spans_record_with_telemetry_disabled(self, registry):
        """The kill switch silences metrics, not the span event itself."""
        tracer = Tracer(registry=registry)
        try:
            set_enabled(False)
            with tracer.span("quiet") as event:
                pass
            assert "duration_ns" in event
            family = registry.get("softsnn_span_seconds")
            assert family.labels(name="quiet").count == 0
        finally:
            set_enabled(None)


# --------------------------------------------------------------------- #
# span instrumentation of the training loop
# --------------------------------------------------------------------- #
class TestTrainingSpans:
    """``train.epoch`` spans fire per epoch and never perturb the result."""

    def _train(self):
        from repro.data.synthetic_mnist import SyntheticMNIST
        from repro.snn.network import NetworkConfig
        from repro.snn.training import TrainingConfig, TrainingRunner

        dataset = SyntheticMNIST().generate(n_samples=8, rng=3, classes=[0, 1])
        runner = TrainingRunner(
            NetworkConfig(n_inputs=784, n_neurons=8, timesteps=20),
            TrainingConfig(
                epochs=2, learning_mode="fast_wta", label_assignment_mode="fast"
            ),
        )
        return runner.train(dataset, rng=5)

    def test_train_epoch_spans_emitted(self, tmp_path):
        sink = tmp_path / "trace.jsonl"
        configure_trace(str(sink))
        try:
            self._train()
        finally:
            configure_trace(None)
        events = [json.loads(line) for line in sink.read_text().splitlines()]
        epochs = [event for event in events if event["name"] == "train.epoch"]
        assert [event["attributes"]["epoch"] for event in epochs] == [1, 2]
        assert all(
            event["attributes"]["mode"] == "fast_wta" for event in epochs
        )
        assert all(event["duration_ns"] >= 0 for event in epochs)

    def test_training_bit_identical_with_tracing_on(self, tmp_path):
        baseline = self._train()
        sink = tmp_path / "trace.jsonl"
        configure_trace(str(sink))
        try:
            traced = self._train()
        finally:
            configure_trace(None)
        assert sink.read_text()  # the sink really was live during training
        assert np.array_equal(baseline.weights, traced.weights)
        assert np.array_equal(baseline.theta, traced.theta)
        assert np.array_equal(baseline.neuron_labels, traced.neuron_labels)


# --------------------------------------------------------------------- #
# Grafana dashboard stays in sync with the metric catalog
# --------------------------------------------------------------------- #
class TestGrafanaDashboard:
    _DOCS = __import__("pathlib").Path(__file__).resolve().parents[1] / "docs"

    def _catalog_families(self):
        """Every ``softsnn_`` family documented in observability.md tables."""
        text = (self._DOCS / "observability.md").read_text()
        catalog = text.split("## Metric catalog", 1)[1].split(
            "## Span naming convention", 1
        )[0]
        families = set()
        for line in catalog.splitlines():
            if not line.startswith("| `softsnn_"):
                continue
            families.add(line.split("`")[1])
        return families

    def test_catalog_is_nonempty_and_complete(self):
        families = self._catalog_families()
        # Spot-check one family per subsystem so a doc refactor that drops
        # a whole table section cannot silently pass.
        for expected in (
            "softsnn_kernel_calls_total",
            "softsnn_engine_batches_total",
            "softsnn_training_epochs_total",
            "softsnn_campaign_cells_total",
            "softsnn_serve_requests_total",
            "softsnn_span_seconds",
        ):
            assert expected in families
        assert len(families) >= 26

    def test_every_cataloged_family_has_a_panel(self):
        dashboard = json.loads(
            (self._DOCS / "grafana-softsnn.json").read_text()
        )
        queries = " ".join(
            target.get("expr", "")
            for panel in dashboard["panels"]
            for target in panel.get("targets", [])
        )
        missing = [
            family
            for family in sorted(self._catalog_families())
            if family not in queries
        ]
        assert not missing, f"dashboard lacks panels for: {missing}"

    def test_dashboard_panels_are_well_formed(self):
        dashboard = json.loads(
            (self._DOCS / "grafana-softsnn.json").read_text()
        )
        assert dashboard["title"] == "SoftSNN observability"
        graph_panels = [
            panel for panel in dashboard["panels"] if panel["type"] != "row"
        ]
        assert len(graph_panels) >= 10
        for panel in graph_panels:
            assert panel["targets"], f"panel {panel['title']!r} has no query"


# --------------------------------------------------------------------- #
# process-wide wiring
# --------------------------------------------------------------------- #
class TestDefaultRegistry:
    def test_default_registry_is_shared(self):
        assert obs_metrics.get_registry() is obs_metrics.get_registry()

    def test_instrumented_modules_share_the_default_registry(self):
        # Importing the kernels module registers its families.
        import repro.snn.kernels  # noqa: F401

        registry = obs_metrics.get_registry()
        family = registry.get("softsnn_kernel_calls_total")
        assert family is not None
        assert family.label_names == ("kernel", "backend")
