"""Spike-exact parity between the batched engine and the sequential path.

The batched inference engine (:mod:`repro.snn.engine`) must be
indistinguishable — spike raster for spike raster, prediction for
prediction — from the per-timestep loop it replaces, under a fixed RNG, for
every fault scenario of the paper: the clean network, synapse-register bit
flips, and faulty neuron operations, including the faulty-``Vmem reset``
burst latch that couples consecutive samples.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bound_and_protect import BnPVariant, NeuronProtection
from repro.core.mitigation import BnPTechnique, NoMitigation
from repro.data.synthetic_mnist import SyntheticMNIST
from repro.faults.injector import FaultInjector
from repro.faults.models import ComputeEngineFaultConfig
from repro.snn.engine import BatchedInferenceEngine
from repro.snn.inference import InferenceEngine
from repro.snn.network import DiehlCookNetwork, NetworkConfig
from repro.snn.neuron import NeuronOperationStatus

N_NEURONS = 24
N_CLASSES = 6
TIMESTEPS = 40


@pytest.fixture(scope="module")
def parity_dataset():
    """Fourteen small synthetic digits."""
    return SyntheticMNIST().generate(n_samples=14, rng=11)


@pytest.fixture(scope="module")
def parity_config():
    return NetworkConfig(n_inputs=784, n_neurons=N_NEURONS, timesteps=TIMESTEPS)


@pytest.fixture()
def labels():
    return np.arange(N_NEURONS, dtype=np.int64) % N_CLASSES


def build_network(config, status=None):
    network = DiehlCookNetwork(config, rng=1)
    if status is not None:
        network.set_neuron_fault_status(status.copy())
    return network


def assert_results_identical(sequential, batched):
    assert np.array_equal(sequential.predictions, batched.predictions)
    assert np.array_equal(sequential.spike_counts, batched.spike_counts)
    assert sequential.total_input_spikes == batched.total_input_spikes
    assert sequential.per_sample_output_spikes == batched.per_sample_output_spikes
    assert sequential.accuracy == batched.accuracy


class TestCleanParity:
    def test_evaluate_matches_sequential(self, parity_dataset, parity_config, labels):
        sequential = InferenceEngine(
            build_network(parity_config), labels
        ).evaluate_sequential(parity_dataset, rng=np.random.default_rng(7))
        batched = InferenceEngine(build_network(parity_config), labels).evaluate(
            parity_dataset, rng=np.random.default_rng(7), batch_size=5
        )
        assert_results_identical(sequential, batched)

    def test_chunk_size_invariance(self, parity_dataset, parity_config, labels):
        outcomes = [
            InferenceEngine(build_network(parity_config), labels).evaluate(
                parity_dataset, rng=np.random.default_rng(7), batch_size=batch_size
            )
            for batch_size in (1, 5, 64)
        ]
        for other in outcomes[1:]:
            assert np.array_equal(outcomes[0].predictions, other.predictions)
            assert np.array_equal(outcomes[0].spike_counts, other.spike_counts)

    def test_spike_rasters_bitwise_identical(
        self, parity_dataset, parity_config, labels
    ):
        network = build_network(parity_config)
        generator = np.random.default_rng(3)
        reference = [
            network.present_sequential(image, rng=generator).output_spikes
            for image, _ in parity_dataset
        ]
        engine = BatchedInferenceEngine(build_network(parity_config))
        result = engine.run(parity_dataset.images, rng=np.random.default_rng(3))
        assert result.output_spikes.shape == (
            len(parity_dataset),
            TIMESTEPS,
            N_NEURONS,
        )
        for index, raster in enumerate(reference):
            assert np.array_equal(raster, result.output_spikes[index])

    def test_encode_batch_bitwise_matches_sequential_stream(self, parity_dataset):
        encoder = build_network(
            NetworkConfig(n_inputs=784, n_neurons=4, timesteps=TIMESTEPS)
        ).encoder
        sequential_rng = np.random.default_rng(9)
        reference = np.stack(
            [
                encoder.encode(image, rng=sequential_rng)
                for image in parity_dataset.images
            ]
        )
        batched = encoder.encode_batch(
            parity_dataset.images, rng=np.random.default_rng(9)
        )
        assert np.array_equal(reference, batched)

    def test_present_wrapper_matches_sequential(self, parity_config):
        image = SyntheticMNIST().render(4, rng=2)
        seq_net = build_network(parity_config)
        bat_net = build_network(parity_config)
        reference = seq_net.present_sequential(image, rng=np.random.default_rng(5))
        wrapped = bat_net.present(image, rng=np.random.default_rng(5))
        assert np.array_equal(reference.output_spikes, wrapped.output_spikes)
        assert np.array_equal(reference.spike_counts, wrapped.spike_counts)
        assert reference.input_spike_count == wrapped.input_spike_count
        # The wrapper leaves the neuron group in the sequential final state.
        assert np.array_equal(seq_net.neurons.last_spikes, bat_net.neurons.last_spikes)
        assert np.array_equal(
            seq_net.neurons.refractory_remaining,
            bat_net.neurons.refractory_remaining,
        )

    def test_classify_batch_matches_classify_counts(
        self, parity_dataset, parity_config, labels
    ):
        engine = InferenceEngine(build_network(parity_config), labels)
        counts = np.random.default_rng(0).integers(
            0, 30, size=(12, N_NEURONS)
        )
        batched = engine.classify_batch(counts)
        for index in range(counts.shape[0]):
            assert batched[index] == engine.classify_counts(counts[index])


class TestSynapseFaultParity:
    def _faulted_network(self, config, rate):
        network = build_network(config)
        injector = FaultInjector(network)
        injector.inject(
            ComputeEngineFaultConfig.synapses_only(rate),
            rng=np.random.default_rng(21),
        )
        return network

    @pytest.mark.parametrize("rate", [1e-2, 1e-1])
    def test_bit_flip_parity(self, parity_dataset, parity_config, labels, rate):
        sequential = InferenceEngine(
            self._faulted_network(parity_config, rate), labels
        ).evaluate_sequential(parity_dataset, rng=np.random.default_rng(7))
        batched = InferenceEngine(
            self._faulted_network(parity_config, rate), labels
        ).evaluate(parity_dataset, rng=np.random.default_rng(7), batch_size=4)
        assert_results_identical(sequential, batched)

    def test_effective_weights_parity(self, parity_dataset, parity_config, labels):
        bounded = build_network(parity_config).synapses.weights * 0.5
        sequential = InferenceEngine(
            self._faulted_network(parity_config, 1e-1), labels
        ).evaluate_sequential(
            parity_dataset, rng=np.random.default_rng(7), effective_weights=bounded
        )
        batched = InferenceEngine(
            self._faulted_network(parity_config, 1e-1), labels
        ).evaluate(
            parity_dataset,
            rng=np.random.default_rng(7),
            effective_weights=bounded,
            batch_size=6,
        )
        assert_results_identical(sequential, batched)


class TestNeuronFaultParity:
    def _status(self):
        status = NeuronOperationStatus.healthy(N_NEURONS)
        status.vmem_leak_ok[3] = False
        status.vmem_increase_ok[6] = False
        status.spike_generation_ok[9] = False
        status.vmem_reset_ok[[1, 12]] = False
        return status

    def test_all_operation_faults_parity(self, parity_dataset, parity_config, labels):
        seq_net = build_network(parity_config, self._status())
        bat_net = build_network(parity_config, self._status())
        sequential = InferenceEngine(seq_net, labels).evaluate_sequential(
            parity_dataset, rng=np.random.default_rng(7)
        )
        batched = InferenceEngine(bat_net, labels).evaluate(
            parity_dataset, rng=np.random.default_rng(7), batch_size=5
        )
        assert_results_identical(sequential, batched)
        # The faulty-reset burst latch must agree after the whole dataset…
        assert np.array_equal(
            seq_net.neurons.reset_fault_latched, bat_net.neurons.reset_fault_latched
        )
        assert seq_net.neurons.reset_fault_latched.any()

    def test_latch_crosses_sample_boundaries_mid_batch(self, parity_config, labels):
        # Sample 0 is blank (no input spikes, nothing can latch); the bright
        # samples afterwards trip the faulty-reset latch mid-batch, forcing
        # the engine's fix-up to re-simulate the tail with updated latches.
        renderer = SyntheticMNIST()
        images = np.stack(
            [np.zeros((28, 28))]
            + [renderer.render(d, rng=d) for d in (3, 8, 1, 5, 0, 7)]
        )
        from repro.data.datasets import Dataset

        dataset = Dataset(images=images, labels=np.zeros(7, dtype=np.int64))

        status = NeuronOperationStatus.healthy(N_NEURONS)
        status.vmem_reset_ok[[2, 17]] = False

        seq_net = build_network(parity_config, status)
        bat_net = build_network(parity_config, status)
        sequential = InferenceEngine(seq_net, labels).evaluate_sequential(
            dataset, rng=np.random.default_rng(13)
        )
        engine = BatchedInferenceEngine(bat_net)
        result = engine.run(dataset.images, rng=np.random.default_rng(13))
        assert result.simulation_passes > 1
        assert np.array_equal(sequential.spike_counts, result.spike_counts)
        assert np.array_equal(
            seq_net.neurons.reset_fault_latched, result.final_reset_latch
        )
        # The blank first sample must not carry any latch.
        assert not result.final_state.reset_fault_latched[0][
            ~seq_net.neurons.reset_fault_latched
        ].any()


class TestProtectionParity:
    def _status(self):
        status = NeuronOperationStatus.healthy(N_NEURONS)
        status.vmem_reset_ok[[2, 17]] = False
        return status

    def test_neuron_protection_gating_and_stats(
        self, parity_dataset, parity_config, labels
    ):
        seq_net = build_network(parity_config, self._status())
        bat_net = build_network(parity_config, self._status())
        seq_protection = NeuronProtection(trigger_cycles=2)
        bat_protection = NeuronProtection(trigger_cycles=2)
        sequential = InferenceEngine(seq_net, labels).evaluate_sequential(
            parity_dataset,
            rng=np.random.default_rng(7),
            step_monitor=seq_protection,
        )
        batched = InferenceEngine(bat_net, labels).evaluate(
            parity_dataset,
            rng=np.random.default_rng(7),
            step_monitor=bat_protection,
            batch_size=4,
        )
        assert_results_identical(sequential, batched)
        assert seq_protection.statistics() == bat_protection.statistics()
        assert bat_protection.n_protected > 0

    def test_bnp_technique_batch_size_invariance(self, trained_model, small_split):
        _, test_set = small_split
        technique = BnPTechnique(BnPVariant.BNP2)
        config = ComputeEngineFaultConfig.full_compute_engine(1e-1)
        outcomes = [
            technique.evaluate(
                trained_model,
                test_set,
                fault_config=config,
                rng=np.random.default_rng(17),
                batch_size=batch_size,
            )
            for batch_size in (3, 64)
        ]
        assert np.array_equal(outcomes[0].predictions, outcomes[1].predictions)
        assert np.array_equal(outcomes[0].spike_counts, outcomes[1].spike_counts)

    def test_no_mitigation_batch_size_invariance(self, trained_model, small_split):
        _, test_set = small_split
        outcomes = [
            NoMitigation().evaluate(
                trained_model,
                test_set,
                fault_config=ComputeEngineFaultConfig.synapses_only(1e-2),
                rng=np.random.default_rng(23),
                batch_size=batch_size,
            )
            for batch_size in (2, 60)
        ]
        assert np.array_equal(outcomes[0].predictions, outcomes[1].predictions)


class TestEngineValidation:
    def test_rejects_bad_batch_size(self, parity_dataset, parity_config, labels):
        engine = InferenceEngine(build_network(parity_config), labels)
        with pytest.raises(ValueError):
            engine.evaluate(parity_dataset, rng=0, batch_size=0)

    def test_rejects_wrong_image_width(self, parity_config):
        engine = BatchedInferenceEngine(build_network(parity_config))
        with pytest.raises(ValueError):
            engine.run(np.zeros((3, 10, 10)))

    def test_rejects_empty_batch(self, parity_config):
        engine = BatchedInferenceEngine(build_network(parity_config))
        with pytest.raises(ValueError):
            engine.run_encoded(np.zeros((0, TIMESTEPS, 784), dtype=bool))

    def test_rejects_bad_raster_shape(self, parity_config):
        engine = BatchedInferenceEngine(build_network(parity_config))
        with pytest.raises(ValueError):
            engine.run_encoded(np.zeros((2, TIMESTEPS, 99), dtype=bool))
