"""Tests for the network, training pipeline and inference engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic_mnist import SyntheticMNIST
from repro.snn.inference import InferenceEngine, InferenceResult
from repro.snn.network import DiehlCookNetwork, NetworkConfig
from repro.snn.neuron import LIFParameters
from repro.snn.training import STDPTrainer, TrainedModel, TrainingConfig


class TestNetworkConfig:
    def test_defaults_valid(self):
        config = NetworkConfig()
        assert config.n_inputs == 784
        assert config.make_quantizer(0.05).bits == 8

    def test_auto_full_scale_uses_clean_max(self):
        config = NetworkConfig()
        quantizer = config.make_quantizer(clean_max_weight=0.05)
        assert quantizer.full_scale == pytest.approx(0.1)

    def test_explicit_full_scale_wins(self):
        config = NetworkConfig(weight_full_scale=3.0)
        assert config.make_quantizer(0.05).full_scale == 3.0

    def test_training_quantizer_is_high_precision(self):
        assert NetworkConfig().make_training_quantizer().bits == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkConfig(n_neurons=0)
        with pytest.raises(ValueError):
            NetworkConfig(timesteps=0)
        with pytest.raises(ValueError):
            NetworkConfig(weight_full_scale=-1.0)
        with pytest.raises(ValueError):
            NetworkConfig(target_total_intensity=0.0)


class TestDiehlCookNetwork:
    def _network(self, n_neurons=10, timesteps=40):
        config = NetworkConfig(n_inputs=784, n_neurons=n_neurons, timesteps=timesteps)
        return DiehlCookNetwork(config, rng=0)

    def test_present_returns_sample_result(self):
        network = self._network()
        image = SyntheticMNIST().render(3, rng=1)
        result = network.present(image, rng=2)
        assert result.spike_counts.shape == (10,)
        assert result.output_spikes.shape == (40, 10)
        assert result.input_spike_count > 0

    def test_wrong_image_size_raises(self):
        network = self._network()
        with pytest.raises(ValueError):
            network.present(np.zeros((10, 10)))

    def test_learning_changes_weights(self):
        network = self._network()
        before = network.synapses.weights
        image = SyntheticMNIST().render(0, rng=1)
        network.present(image, learning=True, rng=2)
        assert not np.allclose(network.synapses.weights, before)

    def test_inference_does_not_change_weights(self):
        network = self._network()
        before = network.synapses.weights
        image = SyntheticMNIST().render(0, rng=1)
        network.present(image, learning=False, rng=2)
        assert np.array_equal(network.synapses.weights, before)

    def test_effective_weights_override(self):
        network = self._network()
        image = SyntheticMNIST().render(5, rng=1)
        silent = network.present(
            image, rng=3, effective_weights=np.zeros(network.synapses.shape)
        )
        assert silent.total_output_spikes == 0

    def test_step_monitor_called_every_timestep(self):
        network = self._network(timesteps=25)
        calls = []
        network.present(
            SyntheticMNIST().render(1, rng=0),
            rng=1,
            step_monitor=lambda neurons: calls.append(neurons.n_neurons),
        )
        assert len(calls) == 25

    def test_normalize_weights_sets_column_sums(self):
        network = self._network()
        network.normalize_weights(2.5)
        sums = network.synapses.weights.sum(axis=0)
        # The deployed 8-bit register grid re-quantises the normalised weights,
        # so the column sums land near (not exactly on) the target, and all
        # columns are balanced against each other.
        assert np.all(np.abs(sums - 2.5) < 0.4)
        assert sums.max() - sums.min() < 0.4

    def test_normalize_weights_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            self._network().normalize_weights(0.0)

    def test_clear_neuron_faults(self):
        network = self._network()
        status = network.neurons.operation_status
        status.vmem_reset_ok[0] = False
        network.set_neuron_fault_status(status)
        network.clear_neuron_faults()
        assert not network.neurons.operation_status.any_faulty


class TestTrainingConfig:
    def test_invalid_mode_raises(self):
        with pytest.raises(ValueError):
            TrainingConfig(learning_mode="backprop")
        with pytest.raises(ValueError):
            TrainingConfig(label_assignment_mode="magic")

    def test_invalid_rates_raise(self):
        with pytest.raises(ValueError):
            TrainingConfig(wta_learning_rate=0.0)
        with pytest.raises(ValueError):
            TrainingConfig(conscience_decay=0.0)
        with pytest.raises(ValueError):
            TrainingConfig(epochs=0)


class TestSTDPTrainer:
    @pytest.fixture(scope="class")
    def tiny_data(self):
        data = SyntheticMNIST().generate(n_samples=40, rng=3, classes=[0, 1, 2, 3])
        return data

    def _config(self, n_neurons=16, timesteps=50):
        return NetworkConfig(n_inputs=784, n_neurons=n_neurons, timesteps=timesteps)

    def test_fast_wta_training_produces_valid_model(self, tiny_data):
        trainer = STDPTrainer(
            self._config(),
            TrainingConfig(epochs=1, learning_mode="fast_wta", label_assignment_mode="fast"),
        )
        model = trainer.train(tiny_data, rng=0)
        assert model.weights.shape == (784, 16)
        assert model.clean_max_weight > 0
        assert 0 <= model.clean_most_probable_weight <= model.clean_max_weight
        assert model.neuron_labels.shape == (16,)
        assert set(np.unique(model.neuron_labels)).issubset(set(range(10)))

    def test_spiking_wta_training_runs(self, tiny_data):
        trainer = STDPTrainer(
            self._config(n_neurons=8, timesteps=40),
            TrainingConfig(
                epochs=1, learning_mode="spiking_wta", label_assignment_mode="fast"
            ),
        )
        model = trainer.train(tiny_data.take(16, rng=0), rng=1)
        assert model.clean_max_weight > 0
        assert "epoch_neurons_used" in model.training_history

    def test_pairwise_stdp_training_runs(self, tiny_data):
        trainer = STDPTrainer(
            self._config(n_neurons=8, timesteps=30),
            TrainingConfig(epochs=1, learning_mode="pairwise_stdp",
                           label_assignment_mode="fast"),
        )
        model = trainer.train(tiny_data.take(10, rng=0), rng=1)
        assert model.weights.min() >= 0.0
        assert "epoch_mean_spikes" in model.training_history

    def test_training_is_deterministic_given_seed(self, tiny_data):
        def train_once():
            trainer = STDPTrainer(
                self._config(),
                TrainingConfig(epochs=1, learning_mode="fast_wta",
                               label_assignment_mode="fast"),
            )
            return trainer.train(tiny_data, rng=5)

        a, b = train_once(), train_once()
        assert np.array_equal(a.weights, b.weights)
        assert np.array_equal(a.neuron_labels, b.neuron_labels)

    def test_learning_achieves_better_than_chance(self, tiny_data):
        trainer = STDPTrainer(
            self._config(n_neurons=20),
            TrainingConfig(epochs=2, learning_mode="fast_wta",
                           label_assignment_mode="fast"),
        )
        model = trainer.train(tiny_data, rng=2)
        engine = InferenceEngine(model.build_network(rng=3), model.neuron_labels)
        result = engine.evaluate(tiny_data, rng=4)
        # Four classes -> chance is 25%; the trained network must beat it clearly.
        assert result.accuracy_percent > 40.0

    def test_empty_dataset_raises(self):
        trainer = STDPTrainer(self._config())
        with pytest.raises(ValueError):
            trainer.train(
                SyntheticMNIST().generate(n_samples=5, rng=0).subset(np.array([], int))
            )

    def test_wrong_input_dimension_raises(self):
        small_images = SyntheticMNIST(side=14).generate(n_samples=5, rng=0)
        trainer = STDPTrainer(self._config())
        with pytest.raises(ValueError):
            trainer.train(small_images)


class TestTrainedModel:
    def test_build_network_loads_weights_and_is_independent(self, trained_model):
        net_a = trained_model.build_network(rng=0)
        net_b = trained_model.build_network(rng=0)
        net_a.synapses.apply_bit_flips(np.array([0]), np.array([7]))
        assert not np.array_equal(net_a.synapses.registers, net_b.synapses.registers)
        # The deployed full scale has the documented 2x headroom.
        assert net_b.synapses.quantizer.full_scale == pytest.approx(
            2.0 * trained_model.clean_max_weight
        )

    def test_deployment_full_scale_property(self, trained_model):
        assert trained_model.deployment_full_scale == pytest.approx(
            2.0 * trained_model.clean_max_weight
        )

    def test_to_dict_is_serialisable(self, trained_model):
        payload = trained_model.to_dict()
        assert payload["n_neurons"] == trained_model.n_neurons
        assert len(payload["neuron_labels"]) == trained_model.n_neurons

    def test_shape_validation(self, tiny_network_config):
        with pytest.raises(ValueError):
            TrainedModel(
                network_config=tiny_network_config,
                weights=np.zeros((3, 3)),
                theta=np.zeros(tiny_network_config.n_neurons),
                neuron_labels=np.zeros(tiny_network_config.n_neurons, dtype=int),
                clean_max_weight=0.1,
                clean_most_probable_weight=0.05,
            )


class TestInferenceEngine:
    def test_evaluate_returns_consistent_result(self, trained_model, small_split):
        _, test_set = small_split
        engine = InferenceEngine(
            trained_model.build_network(rng=1), trained_model.neuron_labels
        )
        result = engine.evaluate(test_set, rng=2)
        assert result.n_samples == len(test_set)
        assert 0.0 <= result.accuracy <= 1.0
        assert result.spike_counts.shape == (len(test_set), trained_model.n_neurons)
        assert result.total_input_spikes > 0

    def test_confusion_matrix_rows_sum_to_class_counts(self, trained_model, small_split):
        _, test_set = small_split
        engine = InferenceEngine(
            trained_model.build_network(rng=1), trained_model.neuron_labels
        )
        result = engine.evaluate(test_set, rng=2)
        matrix = result.confusion_matrix()
        for cls, count in test_set.class_counts().items():
            assert matrix[cls].sum() == count

    def test_classify_counts_prefers_most_active_label_group(self, trained_model):
        engine = InferenceEngine(
            trained_model.build_network(rng=1), trained_model.neuron_labels
        )
        counts = np.zeros(trained_model.n_neurons)
        target_label = int(trained_model.neuron_labels[0])
        counts[trained_model.neuron_labels == target_label] = 10
        assert engine.classify_counts(counts) == target_label

    def test_label_shape_validation(self, trained_model):
        with pytest.raises(ValueError):
            InferenceEngine(trained_model.build_network(rng=0), np.zeros(3, dtype=int))

    def test_empty_dataset_raises(self, trained_model, small_dataset):
        engine = InferenceEngine(
            trained_model.build_network(rng=1), trained_model.neuron_labels
        )
        with pytest.raises(ValueError):
            engine.evaluate(small_dataset.subset(np.array([], dtype=int)))

    def test_inference_result_validation(self):
        with pytest.raises(ValueError):
            InferenceResult(
                predictions=np.zeros(3, dtype=int),
                labels=np.zeros(4, dtype=int),
                spike_counts=np.zeros((3, 2), dtype=int),
            )
