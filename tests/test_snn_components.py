"""Tests for the SNN building blocks: encoding, quantisation, synapses, STDP."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.snn.encoding import PoissonEncoder
from repro.snn.quantization import WeightQuantizer
from repro.snn.stdp import STDPConfig, STDPRule
from repro.snn.synapse import SynapseMatrix


class TestPoissonEncoder:
    def test_raster_shape_and_dtype(self):
        encoder = PoissonEncoder(timesteps=50, max_rate=0.2)
        raster = encoder.encode(np.full((4, 4), 0.5), rng=0)
        assert raster.shape == (50, 16)
        assert raster.dtype == bool

    def test_zero_image_produces_no_spikes(self):
        encoder = PoissonEncoder(timesteps=30)
        assert encoder.encode(np.zeros((3, 3)), rng=0).sum() == 0

    def test_rate_scales_with_intensity(self):
        encoder = PoissonEncoder(timesteps=400, max_rate=0.5)
        bright = encoder.encode(np.ones((2, 2)), rng=1).mean()
        dim = encoder.encode(np.full((2, 2), 0.2), rng=1).mean()
        assert bright > dim

    def test_expected_counts(self):
        encoder = PoissonEncoder(timesteps=100, max_rate=0.3)
        expected = encoder.expected_spike_counts(np.array([[1.0]]))
        assert expected[0] == pytest.approx(30.0)

    def test_target_total_intensity_normalises_ink(self):
        encoder = PoissonEncoder(timesteps=10, max_rate=0.2, target_total_intensity=2.0)
        sparse = np.zeros((4, 4))
        sparse[:2, 0] = 1.0          # total ink 2 -> no rescaling needed
        dense = np.full((4, 4), 0.5)  # total ink 8 -> scaled down by 4
        assert encoder.spike_probabilities(sparse).sum() == pytest.approx(
            encoder.spike_probabilities(dense).sum(), rel=1e-6
        )

    def test_invalid_image_values_raise(self):
        encoder = PoissonEncoder(timesteps=10)
        with pytest.raises(ValueError):
            encoder.encode(np.full((2, 2), 1.5))

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            PoissonEncoder(timesteps=0)
        with pytest.raises(ValueError):
            PoissonEncoder(max_rate=0.0)
        with pytest.raises(ValueError):
            PoissonEncoder(target_total_intensity=-1.0)

    def test_encode_batch_returns_batch_array(self):
        encoder = PoissonEncoder(timesteps=5)
        images = np.random.default_rng(0).random((3, 2, 2))
        rasters = encoder.encode_batch(images, rng=1)
        assert rasters.shape == (3, 5, 4)
        assert rasters.dtype == bool

    def test_encode_batch_matches_sequential_stream(self):
        encoder = PoissonEncoder(timesteps=6)
        images = np.random.default_rng(0).random((4, 3, 3))
        sequential_rng = np.random.default_rng(5)
        reference = np.stack(
            [encoder.encode(image, rng=sequential_rng) for image in images]
        )
        assert np.array_equal(reference, encoder.encode_batch(images, rng=5))

    def test_deterministic_with_seed(self):
        encoder = PoissonEncoder(timesteps=20)
        image = np.random.default_rng(2).random((3, 3))
        assert np.array_equal(encoder.encode(image, rng=7), encoder.encode(image, rng=7))


class TestWeightQuantizer:
    def test_scale_and_max_code(self):
        quantizer = WeightQuantizer(bits=8, full_scale=2.0)
        assert quantizer.max_code == 255
        assert quantizer.scale == pytest.approx(2.0 / 255)

    def test_roundtrip_error_bounded_by_half_lsb(self):
        quantizer = WeightQuantizer(bits=8, full_scale=1.0)
        weights = np.linspace(0, 1.0, 101)
        assert quantizer.quantization_error(weights).max() <= quantizer.scale / 2 + 1e-12

    def test_saturation(self):
        quantizer = WeightQuantizer(bits=8, full_scale=1.0)
        assert quantizer.quantize(np.array([5.0]))[0] == 255
        assert quantizer.quantize(np.array([-1.0]))[0] == 0

    def test_dequantize_rejects_out_of_range_codes(self):
        quantizer = WeightQuantizer(bits=8)
        with pytest.raises(ValueError):
            quantizer.dequantize(np.array([300]))

    def test_dequantize_rejects_floats(self):
        with pytest.raises(TypeError):
            WeightQuantizer().dequantize(np.array([0.5]))

    def test_bits_bounds(self):
        with pytest.raises(ValueError):
            WeightQuantizer(bits=0)
        with pytest.raises(ValueError):
            WeightQuantizer(bits=17)

    def test_equality_and_hash(self):
        assert WeightQuantizer(8, 2.0) == WeightQuantizer(8, 2.0)
        assert WeightQuantizer(8, 2.0) != WeightQuantizer(8, 1.0)
        assert hash(WeightQuantizer(8, 2.0)) == hash(WeightQuantizer(8, 2.0))

    @given(
        value=st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_monotonicity_property(self, value):
        quantizer = WeightQuantizer(bits=8, full_scale=2.0)
        assert abs(quantizer.roundtrip(np.array([value]))[0] - value) <= quantizer.scale


class TestSynapseMatrix:
    def _matrix(self, quantizer=None):
        rng = np.random.default_rng(0)
        return SynapseMatrix.random(8, 4, rng, high=0.5, quantizer=quantizer)

    def test_shapes_and_counts(self):
        matrix = self._matrix()
        assert matrix.shape == (8, 4)
        assert matrix.n_synapses == 32
        assert matrix.registers.shape == (8, 4)

    def test_weights_match_registers(self):
        matrix = self._matrix()
        assert np.allclose(
            matrix.weights, matrix.quantizer.dequantize(matrix.registers)
        )

    def test_set_weights_roundtrips_through_registers(self):
        matrix = self._matrix()
        new = np.full((8, 4), 0.25)
        matrix.set_weights(new)
        assert np.allclose(matrix.weights, 0.25, atol=matrix.quantizer.scale)

    def test_set_weights_rejects_negative(self):
        matrix = self._matrix()
        with pytest.raises(ValueError):
            matrix.set_weights(np.full((8, 4), -0.1))

    def test_set_weights_rejects_out_of_scale(self):
        matrix = self._matrix()
        with pytest.raises(ValueError):
            matrix.set_weights(np.full((8, 4), 100.0))

    def test_apply_bit_flips_changes_only_targets(self):
        matrix = self._matrix()
        before = matrix.registers
        matrix.apply_bit_flips(np.array([0]), np.array([7]))
        after = matrix.registers
        assert after.ravel()[0] == before.ravel()[0] ^ 128
        assert np.array_equal(after.ravel()[1:], before.ravel()[1:])

    def test_input_current_accumulates_active_rows(self):
        matrix = SynapseMatrix(np.ones((3, 2)) * 0.5)
        spikes = np.array([True, False, True])
        current = matrix.input_current(spikes)
        assert current.shape == (2,)
        assert np.allclose(current, 1.0, atol=2 * matrix.quantizer.scale)

    def test_input_current_with_effective_weights(self):
        matrix = SynapseMatrix(np.ones((3, 2)) * 0.5)
        zeros = np.zeros((3, 2))
        assert matrix.input_current(np.array([1, 1, 1]), effective_weights=zeros).sum() == 0

    def test_copy_is_independent(self):
        matrix = self._matrix()
        clone = matrix.copy()
        clone.apply_bit_flips(np.array([0]), np.array([0]))
        assert not np.array_equal(clone.registers, matrix.registers)

    def test_max_weight_and_histogram(self):
        matrix = self._matrix()
        counts, edges = matrix.weight_histogram(bins=10)
        assert counts.sum() == matrix.n_synapses
        assert matrix.max_weight() <= edges[-1]

    def test_most_probable_weight_not_above_max(self):
        matrix = self._matrix()
        assert matrix.most_probable_weight() <= matrix.max_weight() + 1e-12

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            SynapseMatrix(np.zeros(5))
        with pytest.raises(ValueError):
            SynapseMatrix(np.full((2, 2), -1.0))


class TestSTDPRule:
    def test_potentiation_on_post_spike(self):
        rule = STDPRule(3, 2, STDPConfig(learning_rate_post=0.1, learning_rate_pre=0.0))
        weights = np.zeros((3, 2))
        # Pre spike first builds the pre trace, post spike then potentiates.
        weights = rule.step(weights, np.array([1, 0, 0], bool), np.array([0, 0], bool))
        weights = rule.step(weights, np.array([0, 0, 0], bool), np.array([1, 0], bool))
        assert weights[0, 0] > 0
        assert weights[1, 0] == 0
        assert weights[0, 1] == 0

    def test_depression_on_pre_spike(self):
        rule = STDPRule(2, 2, STDPConfig(learning_rate_post=0.0, learning_rate_pre=0.1))
        weights = np.full((2, 2), 0.5)
        weights = rule.step(weights, np.array([0, 0], bool), np.array([1, 1], bool))
        weights = rule.step(weights, np.array([1, 0], bool), np.array([0, 0], bool))
        assert weights[0, 0] < 0.5
        assert weights[1, 0] == 0.5

    def test_weights_stay_clipped(self):
        config = STDPConfig(learning_rate_post=10.0, learning_rate_pre=10.0, w_max=1.0)
        rule = STDPRule(2, 2, config)
        weights = np.full((2, 2), 0.5)
        for _ in range(5):
            weights = rule.step(
                weights, np.array([1, 1], bool), np.array([1, 1], bool)
            )
        assert weights.min() >= 0.0
        assert weights.max() <= 1.0

    def test_traces_decay(self):
        rule = STDPRule(1, 1, STDPConfig(tau_pre=5.0, tau_post=5.0))
        rule.step(np.zeros((1, 1)), np.array([1], bool), np.array([1], bool))
        trace_after_spike = rule.pre_trace[0]
        rule.step(np.zeros((1, 1)), np.array([0], bool), np.array([0], bool))
        assert rule.pre_trace[0] < trace_after_spike

    def test_reset_traces(self):
        rule = STDPRule(1, 1)
        rule.step(np.zeros((1, 1)), np.array([1], bool), np.array([1], bool))
        rule.reset_traces()
        assert rule.pre_trace[0] == 0.0 and rule.post_trace[0] == 0.0

    def test_shape_validation(self):
        rule = STDPRule(2, 3)
        with pytest.raises(ValueError):
            rule.step(np.zeros((3, 2)), np.zeros(2, bool), np.zeros(3, bool))
        with pytest.raises(ValueError):
            rule.step(np.zeros((2, 3)), np.zeros(3, bool), np.zeros(3, bool))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            STDPConfig(w_max=0.0)
        with pytest.raises(ValueError):
            STDPConfig(tau_pre=0.0)
        with pytest.raises(ValueError):
            STDPConfig(learning_rate_post=-1.0)

    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_weights_always_within_bounds_property(self, seed):
        rng = np.random.default_rng(seed)
        config = STDPConfig()
        rule = STDPRule(4, 3, config)
        weights = rng.random((4, 3)) * config.w_max
        for _ in range(10):
            weights = rule.step(weights, rng.random(4) < 0.3, rng.random(3) < 0.3)
        assert weights.min() >= config.w_min - 1e-12
        assert weights.max() <= config.w_max + 1e-12
