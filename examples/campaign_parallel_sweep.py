#!/usr/bin/env python
"""Run a Fig. 13-style accuracy grid as a parallel, resumable campaign.

Demonstrates the campaign orchestration subsystem end-to-end:

1. declare the grid (workload x network size x fault rate x trial x
   technique) as a :class:`~repro.eval.campaign.CampaignSpec`;
2. execute it across worker processes — every cell is seeded from its
   grid coordinates, so the numbers are bit-identical to a serial run;
3. stream finished cells into a JSON-lines result store, then re-run the
   campaign to show that everything resumes from the store;
4. aggregate the cells back into per-experiment sweep results and render
   the accuracy tables.

Run with ``python examples/campaign_parallel_sweep.py [n_workers]``.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.eval.campaign import CampaignSpec, TechniqueSpec, run_campaign
from repro.eval.experiment import ExperimentConfig
from repro.hardware.enhancements import MitigationKind
from repro.utils.logging import configure_logging


def main(n_workers: int = 2) -> None:
    configure_logging()

    spec = CampaignSpec(
        name="example-fig13",
        experiments=[
            ExperimentConfig(
                workload="mnist",
                n_neurons=48,
                n_train=200,
                n_test=40,
                timesteps=100,
                epochs=2,
                paper_network_size=400,
            ),
            ExperimentConfig(
                workload="fashion-mnist",
                n_neurons=48,
                n_train=200,
                n_test=40,
                timesteps=100,
                epochs=2,
                paper_network_size=400,
            ),
        ],
        fault_rates=[1e-4, 1e-3, 1e-2, 1e-1],
        techniques=[
            TechniqueSpec(MitigationKind.NO_MITIGATION),
            TechniqueSpec(MitigationKind.RE_EXECUTION),
            TechniqueSpec(MitigationKind.BNP3),
        ],
        n_trials=2,
        seed=13,
        runner_seed=7,
    )

    with tempfile.TemporaryDirectory(prefix="softsnn-example-") as tmp:
        store_path = Path(tmp) / "example-fig13.jsonl"

        result = run_campaign(spec, store_path=store_path, n_workers=n_workers)
        print()
        print(result.render_tables())
        print()
        print(
            f"first run: {result.n_executed} of {result.n_cells} cells executed "
            f"in {result.duration_seconds:.1f}s with {n_workers} worker(s)"
        )

        # A second run against the same store computes nothing: every cell
        # is already recorded, so this is a pure read + aggregation.
        resumed = run_campaign(spec, store_path=store_path, n_workers=n_workers)
        print(
            f"second run: {resumed.n_executed} executed, "
            f"{resumed.n_skipped} resumed from {store_path.name}"
        )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2)
