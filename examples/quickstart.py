#!/usr/bin/env python
"""Quickstart: train a small SNN, break it with soft errors, fix it with SoftSNN.

This script walks through the whole pipeline in a couple of minutes on a
laptop:

1. generate a synthetic-MNIST workload,
2. train the unsupervised STDP network (the "clean SNN"),
3. deploy it onto the modelled 8-bit accelerator and measure clean accuracy,
4. inject compute-engine soft errors (register bit flips + faulty neuron
   operations) and watch the accuracy collapse,
5. enable the SoftSNN Bound-and-Protect technique and watch it recover,
6. print the hardware cost of the protection.

Run with ``python examples/quickstart.py``.
"""

from __future__ import annotations

from repro import (
    BnPTechnique,
    BnPVariant,
    ComputeEngineFaultConfig,
    NoMitigation,
    SoftSNNMethodology,
    STDPTrainer,
    TrainingConfig,
    load_workload,
    train_test_split,
)
from repro.snn.network import NetworkConfig
from repro.utils.logging import configure_logging


def main() -> None:
    configure_logging()

    # 1. Workload -----------------------------------------------------------
    dataset = load_workload("mnist", n_samples=240, rng=0)
    train_set, test_set = train_test_split(dataset, test_fraction=0.2, rng=1)
    print(f"workload: {dataset.name}, {len(train_set)} train / {len(test_set)} test")

    # 2. Train the clean SNN -------------------------------------------------
    network_config = NetworkConfig(n_neurons=80, timesteps=120)
    trainer = STDPTrainer(
        network_config,
        TrainingConfig(epochs=2, learning_mode="fast_wta", label_assignment_mode="fast"),
    )
    model = trainer.train(train_set, rng=2)
    print(
        f"trained clean SNN: {model.n_neurons} neurons, "
        f"wgh_max={model.clean_max_weight:.4f}, wgh_hp={model.clean_most_probable_weight:.4f}"
    )

    # 3. Clean accuracy on the deployed 8-bit engine --------------------------
    clean = NoMitigation().evaluate(model, test_set, rng=3)
    print(f"clean accuracy:                    {clean.accuracy_percent:5.1f}%")

    # 4. Accuracy under soft errors, no mitigation ----------------------------
    fault_config = ComputeEngineFaultConfig.full_compute_engine(fault_rate=0.1)
    faulty = NoMitigation().evaluate(model, test_set, fault_config, rng=3)
    print(f"faulty engine, no mitigation:      {faulty.accuracy_percent:5.1f}%")

    # 5. Accuracy with SoftSNN Bound-and-Protect ------------------------------
    protected = BnPTechnique(BnPVariant.BNP3).evaluate(
        model, test_set, fault_config, rng=3
    )
    print(f"faulty engine, SoftSNN (BnP3):     {protected.accuracy_percent:5.1f}%")

    # 6. Hardware cost of the protection --------------------------------------
    methodology = SoftSNNMethodology(model, variant=BnPVariant.BNP3)
    overheads = methodology.deploy().hardware_overheads
    print(
        "hardware overheads of BnP3 vs unprotected engine: "
        f"latency x{overheads['latency']:.2f}, energy x{overheads['energy']:.2f}, "
        f"area x{overheads['area']:.2f}"
    )


if __name__ == "__main__":
    main()
