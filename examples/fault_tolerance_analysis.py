#!/usr/bin/env python
"""SNN fault-tolerance analysis (Section 3.1 of the paper).

Reproduces, at example scale, the two analyses SoftSNN builds on:

* the weight-distribution analysis of Fig. 9 — bit flips push weights above
  the clean network's maximum, so ``wgh_max`` is a usable detection
  threshold;
* the neuron-fault sensitivity study of Fig. 10(a) — only the faulty
  ``Vmem reset`` operation is catastrophic.

Run with ``python examples/fault_tolerance_analysis.py``.
"""

from __future__ import annotations

from repro import FaultToleranceAnalyzer, STDPTrainer, TrainingConfig, load_workload, train_test_split
from repro.eval.reporting import format_series, format_table
from repro.snn.network import NetworkConfig
from repro.utils.logging import configure_logging


def main() -> None:
    configure_logging()

    dataset = load_workload("mnist", n_samples=200, rng=0)
    train_set, test_set = train_test_split(dataset, test_fraction=0.2, rng=1)

    trainer = STDPTrainer(
        NetworkConfig(n_neurons=64, timesteps=100),
        TrainingConfig(epochs=2, learning_mode="fast_wta", label_assignment_mode="fast"),
    )
    model = trainer.train(train_set, rng=2)
    analyzer = FaultToleranceAnalyzer(model)

    # ----------------------------------------------------------------- Fig. 9
    analysis = analyzer.weight_distribution(fault_rate=0.1, bins=12, rng=3)
    centers = 0.5 * (analysis.bin_edges[:-1] + analysis.bin_edges[1:])
    print()
    print(
        format_table(
            ["weight bin centre", "clean", "faulty (rate 0.1)"],
            [
                [f"{center:.4f}", int(clean), int(faulty)]
                for center, clean, faulty in zip(
                    centers, analysis.clean_counts, analysis.faulty_counts
                )
            ],
            title="Weight distribution before/after register bit flips (Fig. 9)",
        )
    )
    print(
        f"safe range: [0, {analysis.clean_max_weight:.4f}]  "
        f"faulty weights above it: {analysis.n_weights_above_clean_max}"
    )

    # ---------------------------------------------------------------- Fig. 10a
    sensitivity = analyzer.neuron_fault_sensitivity(
        test_set, fault_rates=[0.01, 0.1, 0.5], rng=4
    )
    print()
    print(f"clean accuracy: {sensitivity.baseline_accuracy:.1f}%")
    for fault_type, accuracies in sensitivity.accuracy_by_type.items():
        print(
            format_series(
                f"faulty '{fault_type.value}'",
                sensitivity.fault_rates,
                accuracies,
                x_label="fault rate",
            )
        )
    critical = [fault_type.value for fault_type in sensitivity.critical_types()]
    print(f"critical fault types (must be protected): {critical}")

    # --------------------------------------------------------- derived safe range
    safe_range = analyzer.derive_safe_range()
    print()
    print(
        "Bound-and-Protect parameters derived from the analysis: "
        f"wgh_th={safe_range.weight_threshold:.4f}, "
        f"BnP1 wgh_def=0, BnP2 wgh_def={safe_range.bnp2_substitute:.4f}, "
        f"BnP3 wgh_def={safe_range.bnp3_substitute:.4f}"
    )


if __name__ == "__main__":
    main()
