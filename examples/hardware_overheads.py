#!/usr/bin/env python
"""Hardware overheads of the mitigation techniques (Fig. 3b and Fig. 14).

Prints the normalised latency, energy and area of the five techniques across
the paper's network sizes (N400…N3600), using the analytical model of the
256x256 compute engine.  No SNN simulation is involved, so this runs in
milliseconds.

Run with ``python examples/hardware_overheads.py``.
"""

from __future__ import annotations

from repro.eval.overheads import PAPER_NETWORK_SIZES, overhead_tables_for_sizes
from repro.eval.reporting import format_table
from repro.hardware.accelerator import AcceleratorModel
from repro.hardware.compute_engine import ComputeEngineConfig
from repro.hardware.enhancements import MitigationKind


def main() -> None:
    tables = overhead_tables_for_sizes(network_sizes=list(PAPER_NETWORK_SIZES))
    headers = ["technique"] + [f"N{size}" for size in PAPER_NETWORK_SIZES]

    for metric in ("latency", "energy", "area"):
        table = tables[metric]
        print(
            format_table(
                headers,
                table.as_rows(),
                title=f"Normalised {metric} (reference: N400, no mitigation)",
            )
        )
        print()

    latency = tables["latency"]
    energy = tables["energy"]
    print(
        "Savings of BnP3 versus re-execution: "
        f"latency up to x{max(latency.savings_versus(MitigationKind.BNP3, MitigationKind.RE_EXECUTION)):.1f}, "
        f"energy up to x{max(energy.savings_versus(MitigationKind.BNP3, MitigationKind.RE_EXECUTION)):.1f}"
    )

    # Absolute per-inference numbers for one configuration, for context.
    model = AcceleratorModel(ComputeEngineConfig(n_neurons=400))
    report = model.report(MitigationKind.BNP3)
    print(
        f"\nAbsolute estimates for N400 with BnP3: "
        f"latency {report.latency_ns / 1e6:.2f} ms per inference, "
        f"area {report.area / 1e6:.2f} MGE (gate equivalents)"
    )


if __name__ == "__main__":
    main()
