#!/usr/bin/env python
"""Train → snapshot → serve → classify: the online serving layer end-to-end.

Demonstrates the ``repro.serve`` subsystem:

1. train a small model and register it (snapshot + checksums) with a
   :class:`~repro.serve.registry.ModelRegistry`;
2. start the HTTP classifier service on an ephemeral port;
3. classify the same samples through :class:`~repro.serve.service.ServiceClient`
   in all three fault-aware serving modes — ``clean``, ``faulty`` (a
   reproducible fault map injected into the serving network) and
   ``protected`` (the same faults served through BnP bounding + neuron
   protection) — showing the paper's degraded-vs-mitigated contrast live;
4. read the service metrics: request counts, micro-batch occupancy, and
   latency percentiles from the adaptive micro-batching scheduler.

Run with ``python examples/serving_quickstart.py``.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.data.datasets import load_workload, train_test_split
from repro.serve.registry import ModelRegistry
from repro.serve.service import (
    ServiceClient,
    ServiceConfig,
    ServiceServer,
    SoftSNNService,
)
from repro.snn.network import NetworkConfig
from repro.snn.training import STDPTrainer, TrainingConfig
from repro.utils.logging import configure_logging


def main() -> None:
    configure_logging()

    # 1. Train a small model and snapshot it into a registry directory.
    print("training a 32-neuron model on the synthetic MNIST workload…")
    dataset = load_workload("mnist", n_samples=120, rng=7)
    train_set, test_set = train_test_split(dataset, test_fraction=0.2, rng=8)
    trainer = STDPTrainer(
        NetworkConfig(n_inputs=784, n_neurons=32, timesteps=80),
        TrainingConfig(
            epochs=2, learning_mode="fast_wta", label_assignment_mode="fast"
        ),
    )
    model = trainer.train(train_set, rng=9)

    models_dir = Path(tempfile.mkdtemp(prefix="softsnn-serving-"))
    registry = ModelRegistry(models_dir)
    entry = registry.register(model, "quickstart-mnist", workload="mnist")
    print(f"registered {entry.name!r} (sha256 {entry.checksums['npz'][:12]}…)")

    # 2. Serve it over HTTP; port 0 asks for an ephemeral port.
    service = SoftSNNService(
        ServiceConfig(
            models_dir=models_dir,
            max_batch_size=8,
            max_delay_ms=4.0,
            default_fault_rate=0.15,
        ),
        registry=registry,
    )
    with ServiceServer(service, port=0) as server:
        print(f"service listening on {server.url}")
        client = ServiceClient(server.url)
        print(f"healthz: {client.healthz()}")

        # 3. Classify the same samples in the three serving modes.  Fixed
        # per-request seeds make every prediction reproducible.
        images = [test_set.images[index].reshape(-1) for index in range(12)]
        labels = [int(test_set.labels[index]) for index in range(12)]
        seeds = [1000 + index for index in range(12)]
        print(f"\nground truth:        {labels}")
        for mode in ("clean", "faulty", "protected"):
            response = client.classify(
                [image.tolist() for image in images],
                model="quickstart-mnist",
                mode=mode,
                seeds=seeds,
            )
            predictions = response["predictions"]
            accuracy = 100.0 * float(
                np.mean(np.asarray(predictions) == np.asarray(labels))
            )
            print(f"mode={mode:9s} -> {predictions}  ({accuracy:.0f}% correct)")

        # 4. What did the scheduler do?
        metrics = client.metrics()
        print(
            f"\nmetrics: {metrics['requests_total']} requests, "
            f"mean batch occupancy {metrics['mean_batch_size']}, "
            f"p50 {metrics['latency']['p50_ms']}ms / "
            f"p99 {metrics['latency']['p99_ms']}ms, "
            f"queue depth {metrics['queue_depth']}"
        )
    print("server stopped; snapshots remain in", models_dir)


if __name__ == "__main__":
    main()
