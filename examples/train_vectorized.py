#!/usr/bin/env python
"""Train → snapshot → serve with the vectorized STDP training engine.

The walkthrough behind the README's "Training quickstart":

1. generate a synthetic-MNIST workload,
2. train the paper's pairwise-STDP network through the vectorized engine
   (the default path of ``TrainingRunner.train``) and time it against the
   per-timestep reference loop (``train_sequential``),
3. verify the two are bit-identical — the engine's defining contract,
4. snapshot the model atomically and register it with the serving layer,
5. retrain it in place through ``ModelRegistry.retrain`` (the hot path a
   live service uses) and show the snapshot checksums rolling over.

Run with ``python examples/train_vectorized.py``.  See
``docs/architecture.md`` for where the engine sits in the stack and
``EXPERIMENTS.md`` for the measured training-scale table.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import numpy as np

from repro import NetworkConfig, TrainingConfig, TrainingRunner, load_workload
from repro.serve.registry import ModelRegistry
from repro.utils.logging import configure_logging


def main() -> None:
    configure_logging()

    # 1. Workload -----------------------------------------------------------
    train_set = load_workload("mnist", n_samples=48, rng=0)
    print(f"workload: {train_set.name}, {len(train_set)} training images")

    # 2. Train: vectorized engine vs sequential reference --------------------
    runner = TrainingRunner(
        NetworkConfig(n_inputs=784, n_neurons=100, timesteps=100),
        TrainingConfig(
            epochs=1,
            learning_mode="pairwise_stdp",
            label_assignment_mode="spiking",
        ),
    )
    start = time.perf_counter()
    model = runner.train(train_set, rng=7)  # vectorized (default)
    vectorized_s = time.perf_counter() - start

    start = time.perf_counter()
    reference = runner.train_sequential(train_set, rng=7)
    sequential_s = time.perf_counter() - start
    print(
        f"pairwise STDP, N100: vectorized {vectorized_s:.2f}s, "
        f"sequential {sequential_s:.2f}s ({sequential_s / vectorized_s:.1f}x)"
    )

    # 3. Bit-identical, not just close ---------------------------------------
    assert np.array_equal(model.weights, reference.weights)
    assert np.array_equal(model.neuron_labels, reference.neuron_labels)
    assert model.training_history == reference.training_history
    print("parity: weights, labels and history are bit-identical")

    # 4. Snapshot + registry --------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        models_dir = Path(tmp) / "models"
        registry = ModelRegistry(models_dir)
        entry = registry.register(model, "mnist-n100", workload="mnist")
        print(
            f"registered {entry.name!r}: {entry.n_neurons} neurons, "
            f"npz sha256 {entry.checksums['npz'][:12]}…"
        )

        # 5. Hot retrain in place (what a live service does) ------------------
        retrained = registry.retrain(
            "mnist-n100",
            train_set,
            rng=8,
            training_config=TrainingConfig(
                epochs=1,
                learning_mode="pairwise_stdp",
                label_assignment_mode="spiking",
            ),
        )
        assert retrained.checksums != entry.checksums
        print(
            f"retrained in place: npz sha256 now {retrained.checksums['npz'][:12]}… "
            "(atomic rewrite; a running service adopts it on its next scan)"
        )


if __name__ == "__main__":
    main()
