#!/usr/bin/env python
"""Compare all mitigation techniques across fault rates (Fig. 13 at example scale).

Sweeps the compute-engine fault rate and compares:

* No mitigation (the unprotected accelerator),
* Re-execution (triple modular redundancy in time),
* SoftSNN's BnP1, BnP2 and BnP3.

Run with ``python examples/mitigation_comparison.py [mnist|fashion-mnist]``.
"""

from __future__ import annotations

import sys

from repro import (
    BnPTechnique,
    BnPVariant,
    NoMitigation,
    ReExecutionTMR,
)
from repro.eval.experiment import ExperimentConfig, ExperimentRunner
from repro.eval.reporting import format_table
from repro.eval.sweep import FaultRateSweep
from repro.hardware.enhancements import MitigationKind
from repro.utils.logging import configure_logging

FAULT_RATES = [1e-4, 1e-3, 1e-2, 1e-1]


def main(workload: str = "mnist") -> None:
    configure_logging()

    runner = ExperimentRunner(root_seed=7)
    config = ExperimentConfig(
        workload=workload,
        n_neurons=72,
        n_train=200,
        n_test=40,
        timesteps=100,
        epochs=2,
    )
    prepared = runner.prepare(config)

    techniques = [
        NoMitigation(),
        ReExecutionTMR(),
        BnPTechnique(BnPVariant.BNP1),
        BnPTechnique(BnPVariant.BNP2),
        BnPTechnique(BnPVariant.BNP3),
    ]
    sweep = FaultRateSweep(prepared.model, prepared.test_set, techniques)
    result = sweep.run(fault_rates=FAULT_RATES, rng=8, label=config.label())

    print()
    print(
        format_table(
            ["technique"] + [str(rate) for rate in FAULT_RATES],
            result.accuracy_table(),
            title=(
                f"Accuracy [%] on {config.label()} "
                f"(clean accuracy {result.clean_accuracy:.1f}%)"
            ),
        )
    )
    improvement = result.improvement_over_no_mitigation(MitigationKind.BNP3)
    print(
        f"\nLargest accuracy improvement of BnP3 over the unmitigated engine: "
        f"{improvement:.1f} percentage points"
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "mnist")
