#!/usr/bin/env python
"""Sweep the neuron-model zoo through a Fig. 13-style fault campaign.

Demonstrates the pluggable neuron-model layer end-to-end:

1. declare a campaign grid crossed over registered neuron models
   (``lif``, ``cuba_lif``, ``fixed_point_lif``) and input encodings
   (``poisson``, ``ttfs``) with :meth:`CampaignSpec.grid`;
2. run it — every cell trains, faults and mitigates its own model
   variant through the same engines, seeded from its grid coordinates;
3. read the per-model accuracy-vs-fault-rate curves out of the run
   report (the same ``accuracy_curves`` JSON ``softsnn-campaign
   --run-report`` writes), contrasting unmitigated degradation against
   Bound-and-Protect for each model x encoding pair.

Run with ``python examples/model_zoo_sweep.py [n_workers]``.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.eval.campaign import CampaignSpec, run_campaign
from repro.eval.experiment import ExperimentConfig
from repro.hardware.enhancements import MitigationKind
from repro.utils.logging import configure_logging

FAULT_RATES = [1e-3, 1e-1]


def main(n_workers: int = 1) -> None:
    configure_logging()

    # One grid, three models, two encodings: 6 experiments sharing the
    # same workload, geometry and fault protocol.  The default-LIF /
    # Poisson cell of this grid is byte-identical to what the same spec
    # produced before the model zoo existed.
    spec = CampaignSpec.grid(
        name="example-model-zoo",
        workloads=["mnist"],
        network_sizes=[32],
        fault_rates=FAULT_RATES,
        technique_kinds=[MitigationKind.NO_MITIGATION, MitigationKind.BNP3],
        base=ExperimentConfig(
            n_train=96, n_test=24, timesteps=60, epochs=1
        ),
        models=["lif", "cuba_lif", "fixed_point_lif"],
        encodings=["poisson", "ttfs"],
        n_trials=1,
    )
    print(f"grid: {len(spec.experiments)} experiments -> {spec.experiment_keys}")

    with tempfile.TemporaryDirectory(prefix="softsnn-zoo-") as tmp:
        store_path = Path(tmp) / "model-zoo.jsonl"
        result = run_campaign(spec, store_path=store_path, n_workers=n_workers)

        # The run report carries one accuracy curve per experiment,
        # labelled with its neuron model and input encoding.
        print()
        header = f"{'model':<16} {'encoding':<9} {'clean':>6}"
        for rate in FAULT_RATES:
            header += f" {'unmit@' + format(rate, 'g'):>10}"
            header += f" {'bnp3@' + format(rate, 'g'):>10}"
        print(header)
        for curve in result.run_report()["accuracy_curves"]:
            row = (
                f"{curve['model']:<16} {curve['encoding']:<9} "
                f"{curve['clean_accuracy']:>6.1f}"
            )
            unmitigated = curve["techniques"]["no_mitigation"]
            bnp = curve["techniques"]["bnp3"]
            for index in range(len(FAULT_RATES)):
                row += f" {unmitigated[index]:>10.1f} {bnp[index]:>10.1f}"
            print(row)
        print()
        print(
            "each row is one model x encoding variant of the same network, "
            "degraded and mitigated through identical fault maps"
        )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 1)
