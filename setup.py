"""Setup shim for environments without the `wheel` package.

The project metadata lives in pyproject.toml / setup.cfg; this file exists so
that `pip install -e .` can fall back to the legacy (setup.py develop)
editable-install path on offline machines where PEP 517 editable builds are
unavailable because the `wheel` package is not installed.
"""

from setuptools import setup

setup()
