"""BENCH — STDP training throughput: sequential loop vs vectorized engine.

Times end-to-end ``TrainingRunner.train`` (pairwise STDP + spiking label
assignment — the paper's rule and the configuration the sequential trainer
pays the most for) at the N400 proxy scale PR 1's inference bench uses,
through both code paths:

``sequential``
    The per-timestep reference loop (``train_sequential``): two dense
    outer products, a dense add/subtract and a full-matrix clip per
    timestep, plus batch-of-one label-assignment presentations.
``vectorized``
    The :class:`~repro.snn.train_engine.VectorizedTrainingEngine`: sparse
    trace-outer-product updates per timestep and true batched label
    assignment, bit-identical to the sequential path.

A smaller N100 measurement rides along so EXPERIMENTS.md can show how the
gap scales with the population size.  Results go to
``benchmarks/results/perf_training.json``.

Set ``PERF_TRAINING_SMOKE=1`` (the CI artifact step does) to shrink the
workload and relax the speedup floor — loaded CI runners still verify
parity and produce a tracking artifact without flaking on wall-clock.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.data.synthetic_mnist import SyntheticMNIST
from repro.snn.network import NetworkConfig
from repro.snn.training import TrainingConfig, TrainingRunner

TIMESTEPS = 150
EPOCHS = 1

SMOKE = bool(int(os.environ.get("PERF_TRAINING_SMOKE", "0") or "0"))
#: (population size, training samples) measured; the last row is the
#: headline N400 proxy (Fig. 13 sweeps N400…N3600).
SIZES = [(50, 6), (100, 6)] if SMOKE else [(100, 12), (400, 12)]
#: Wall-clock floor asserted on the headline row.  An idle machine
#: measures ~9x; the floor sits well below that so a loaded CI worker
#: does not turn the bench flaky (same policy as the inference bench).
MIN_SPEEDUP = 1.5 if SMOKE else 3.0

RESULTS_PATH = Path(__file__).parent / "results" / "perf_training.json"


def _train(n_neurons: int, n_samples: int, vectorized: bool):
    dataset = SyntheticMNIST().generate(n_samples=n_samples, rng=11)
    runner = TrainingRunner(
        NetworkConfig(n_inputs=784, n_neurons=n_neurons, timesteps=TIMESTEPS),
        TrainingConfig(
            epochs=EPOCHS,
            learning_mode="pairwise_stdp",
            label_assignment_mode="spiking",
        ),
    )
    start = time.perf_counter()
    model = runner.train(dataset, rng=7, vectorized=vectorized)
    return time.perf_counter() - start, model


def test_vectorized_training_speedup():
    rows = []
    headline = None
    for n_neurons, n_samples in SIZES:
        sequential_seconds, sequential = _train(n_neurons, n_samples, False)
        vectorized_seconds, vectorized = _train(n_neurons, n_samples, True)

        # Speed must not cost exactness: the engine's defining property is
        # bit-identical weights, labels and history.
        assert np.array_equal(sequential.weights, vectorized.weights)
        assert np.array_equal(
            sequential.neuron_labels, vectorized.neuron_labels
        )
        assert sequential.training_history == vectorized.training_history

        speedup = sequential_seconds / vectorized_seconds
        row = {
            "n_neurons": n_neurons,
            "n_samples": n_samples,
            "timesteps": TIMESTEPS,
            "epochs": EPOCHS,
            "sequential_s": round(sequential_seconds, 3),
            "vectorized_s": round(vectorized_seconds, 3),
            "sequential_ms_per_sample": round(
                1000.0 * sequential_seconds / n_samples, 1
            ),
            "vectorized_ms_per_sample": round(
                1000.0 * vectorized_seconds / n_samples, 1
            ),
            "speedup": round(speedup, 2),
        }
        rows.append(row)
        headline = row

    summary = {
        "learning_mode": "pairwise_stdp",
        "label_assignment_mode": "spiking",
        "smoke": SMOKE,
        "bit_identical": True,
        "sizes": rows,
        "headline_n_neurons": headline["n_neurons"],
        "headline_speedup": headline["speedup"],
    }
    if headline["n_neurons"] == 400:
        # The acceptance number tracked across PRs: the paper-scale proxy.
        summary["n400_speedup"] = headline["speedup"]
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(summary, indent=2) + "\n")

    print()
    for row in rows:
        print(
            f"BENCH perf_training: N{row['n_neurons']}, {row['n_samples']} "
            f"samples x {row['epochs']} epoch(s), {row['timesteps']} steps: "
            f"sequential {row['sequential_ms_per_sample']} ms/sample, "
            f"vectorized {row['vectorized_ms_per_sample']} ms/sample "
            f"({row['speedup']}x)"
        )

    assert headline["speedup"] >= MIN_SPEEDUP, (
        f"vectorized training only {headline['speedup']:.1f}x faster than the "
        f"sequential loop at N{headline['n_neurons']} "
        f"(sequential {headline['sequential_s']:.2f}s, "
        f"vectorized {headline['vectorized_s']:.2f}s)"
    )
