"""Fig. 14 — latency, energy and area across techniques and network sizes.

These tables come from the analytical hardware model of the 256x256 compute
engine.  The reproduced numbers (normalised, as in the paper) are:

* latency (a): no-mitigation/BnP1 scale 1.0 / 2.0 / 3.5 / 5.0 / 7.5 across
  N400…N3600, re-execution is 3x, BnP2/3 add at most 6 %;
* energy (b): re-execution 3x, BnP1 about 1.3x, BnP2/3 about 1.6x — i.e. up
  to ~2.3x energy saved versus re-execution;
* area (c): 1.00 / 1.00 / 1.14 / 1.18 / 1.18.
"""

from __future__ import annotations

import pytest

from repro.eval.overheads import PAPER_NETWORK_SIZES, overhead_tables_for_sizes
from repro.eval.reporting import format_table
from repro.hardware.enhancements import MitigationKind

#: The values read off the paper's Fig. 14 bar charts, used as references.
PAPER_LATENCY_NO_MITIGATION = [1.0, 2.0, 3.5, 5.0, 7.5]
PAPER_AREA = {
    MitigationKind.NO_MITIGATION: 1.00,
    MitigationKind.RE_EXECUTION: 1.00,
    MitigationKind.BNP1: 1.14,
    MitigationKind.BNP2: 1.18,
    MitigationKind.BNP3: 1.18,
}


@pytest.mark.benchmark(group="fig14")
def test_fig14_overhead_tables(benchmark):
    tables = benchmark.pedantic(
        lambda: overhead_tables_for_sizes(network_sizes=list(PAPER_NETWORK_SIZES)),
        rounds=1,
        iterations=1,
    )

    headers = ["technique"] + [f"N{size}" for size in PAPER_NETWORK_SIZES]
    print()
    for metric in ("latency", "energy", "area"):
        table = tables[metric]
        print(
            format_table(
                headers,
                table.as_rows(),
                title=f"Fig. 14 — normalised {metric}",
            )
        )
        print()

    latency = tables["latency"]
    energy = tables["energy"]
    area = tables["area"]

    # (a) latency
    assert latency.row(MitigationKind.NO_MITIGATION) == pytest.approx(
        PAPER_LATENCY_NO_MITIGATION
    )
    assert latency.row(MitigationKind.RE_EXECUTION) == pytest.approx(
        [3 * value for value in PAPER_LATENCY_NO_MITIGATION]
    )
    for index in range(len(PAPER_NETWORK_SIZES)):
        bnp2_ratio = (
            latency.row(MitigationKind.BNP2)[index]
            / latency.row(MitigationKind.NO_MITIGATION)[index]
        )
        assert bnp2_ratio <= 1.061
    # Up to 3x latency saved versus re-execution.
    assert max(
        latency.savings_versus(MitigationKind.BNP1, MitigationKind.RE_EXECUTION)
    ) == pytest.approx(3.0)

    # (b) energy
    assert energy.row(MitigationKind.RE_EXECUTION)[0] == pytest.approx(3.0)
    assert energy.row(MitigationKind.BNP1)[0] == pytest.approx(1.3, abs=0.02)
    assert energy.row(MitigationKind.BNP3)[0] == pytest.approx(1.6, abs=0.02)
    savings = energy.savings_versus(MitigationKind.BNP3, MitigationKind.RE_EXECUTION)
    assert max(savings) >= 1.8  # paper: up to 2.3x

    # (c) area
    for kind, expected in PAPER_AREA.items():
        assert area.row(kind)[0] == pytest.approx(expected, abs=0.01)
