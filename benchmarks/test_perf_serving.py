"""BENCH — serving throughput: adaptive micro-batching vs batch-size-1.

Drives the online service with the closed-loop load generator
(`repro/serve/loadgen.py`) in two configurations that differ only in the
scheduler policy:

* **batch-1 baseline** — ``max_batch_size=1``: every request becomes its
  own engine call, the one-request-one-call serving shape;
* **micro-batched** — ``max_batch_size=32`` with a 10 ms latency budget:
  concurrent requests coalesce into engine batches.

Both runs classify the same 400 requests (N400-proxy network, 48 neurons,
100 timesteps) with the same per-request seeds, so the bench first asserts
the predictions are bit-identical — serving must not trade exactness for
throughput — and then asserts the micro-batched configuration clears at
least 2x the baseline throughput.  The summary lands in
``benchmarks/results/perf_serving.json`` so successive PRs can track the
serving path.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.eval.experiment import ExperimentConfig, ExperimentRunner
from repro.serve.loadgen import run_closed_loop
from repro.serve.registry import ModelRegistry
from repro.serve.service import InProcessClient, ServiceConfig, SoftSNNService

N_REQUESTS = 400
CONCURRENCY = 16
MICRO_BATCH_SIZE = 32
MICRO_DELAY_MS = 10.0
MODEL_NAME = "bench-mnist-n400"

RESULTS_PATH = Path(__file__).parent / "results" / "perf_serving.json"

#: N400-proxy serving model (same scaling as the campaign benches).
BENCH_CONFIG = ExperimentConfig(
    workload="mnist",
    n_neurons=48,
    n_train=200,
    n_test=40,
    timesteps=100,
    epochs=2,
    paper_network_size=400,
)


def _make_service(
    root: Path, model, max_batch_size: int, max_delay_ms: float
) -> SoftSNNService:
    registry = ModelRegistry(root, max_warm_sessions=4)
    registry.register(model, MODEL_NAME, workload="mnist")
    return SoftSNNService(
        ServiceConfig(
            models_dir=root,
            max_batch_size=max_batch_size,
            max_delay_ms=max_delay_ms,
        ),
        registry=registry,
    )


def test_microbatch_vs_single_request_serving(tmp_path):
    prepared = ExperimentRunner(root_seed=2022).prepare(BENCH_CONFIG)
    images = [image.reshape(-1) for image in prepared.test_set.images]
    seeds = list(range(10_000, 10_000 + N_REQUESTS))
    warmup_seeds = list(range(20_000, 20_016))

    reports = {}
    for label, max_batch, delay_ms in (
        ("batch1", 1, 0.0),
        ("microbatch", MICRO_BATCH_SIZE, MICRO_DELAY_MS),
    ):
        with _make_service(
            tmp_path / label, prepared.model, max_batch, delay_ms
        ) as service:
            client = InProcessClient(service)
            # Warm the session (fault-free network build, BLAS paths) so
            # the timed run measures steady-state serving.
            run_closed_loop(
                client,
                images,
                warmup_seeds,
                model=MODEL_NAME,
                mode="clean",
                concurrency=CONCURRENCY,
                label=f"{label}-warmup",
            )
            reports[label] = run_closed_loop(
                client,
                images,
                seeds,
                model=MODEL_NAME,
                mode="clean",
                concurrency=CONCURRENCY,
                label=label,
                metrics_source=service.metrics_snapshot,
            )

    baseline = reports["batch1"]
    micro = reports["microbatch"]

    # Correctness first: micro-batching must not change a single answer.
    assert baseline.errors == 0 and micro.errors == 0
    assert micro.predictions == baseline.predictions

    speedup = micro.throughput_rps / baseline.throughput_rps
    summary = {
        "n_requests": N_REQUESTS,
        "concurrency": CONCURRENCY,
        "n_neurons": BENCH_CONFIG.n_neurons,
        "paper_network_size": BENCH_CONFIG.paper_network_size,
        "timesteps": BENCH_CONFIG.timesteps,
        "baseline_batch1": baseline.to_dict(),
        "microbatch": micro.to_dict(),
        "max_batch_size": MICRO_BATCH_SIZE,
        "max_delay_ms": MICRO_DELAY_MS,
        "speedup": round(speedup, 2),
    }
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(summary, indent=2) + "\n")

    print()
    print(
        f"BENCH perf_serving: {N_REQUESTS} requests x {CONCURRENCY} clients, "
        f"batch1 {baseline.throughput_rps:.0f} rps "
        f"(p99 {baseline.latency_percentiles()['p99']:.1f}ms) vs "
        f"microbatch {micro.throughput_rps:.0f} rps "
        f"(p99 {micro.latency_percentiles()['p99']:.1f}ms, "
        f"mean occupancy {micro.mean_batch_size}) -> {speedup:.2f}x"
    )

    # The acceptance floor: micro-batching must at least double throughput
    # over one-request-one-call serving at this size.
    assert speedup >= 2.0, (
        f"micro-batched serving reached only {speedup:.2f}x the batch-1 "
        f"baseline ({micro.throughput_rps:.0f} vs "
        f"{baseline.throughput_rps:.0f} rps)"
    )
