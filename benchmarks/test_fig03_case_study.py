"""Fig. 3 — the motivating case study.

(a) Accuracy of a (scaled-down) N400 network under faults in the *weight
    registers only*, for two independent fault maps across fault rates
    1e-4…1e-1.  The paper's observations: different fault maps at the same
    rate give different accuracy, and the degradation grows with the rate.
(b) Latency and energy of the re-execution baseline versus the SNN without
    mitigation, both normalised to the unmitigated engine: ~3x each.
"""

from __future__ import annotations

import pytest

from repro.core.mitigation import NoMitigation
from repro.eval.reporting import format_series, format_table
from repro.eval.sweep import FaultRateSweep
from repro.hardware.accelerator import AcceleratorModel
from repro.hardware.compute_engine import ComputeEngineConfig
from repro.hardware.enhancements import MitigationKind

from conftest import FAULT_RATES


@pytest.mark.benchmark(group="fig03")
def test_fig03a_weight_register_fault_maps(benchmark, runner, mnist_n400_config):
    """Accuracy vs weight-register fault rate for two fault maps (Fig. 3a)."""
    prepared = runner.prepare(mnist_n400_config)

    def run_case_study():
        series = {}
        for fault_map_id, seed in (("fault map 1", 101), ("fault map 2", 202)):
            sweep = FaultRateSweep(
                prepared.model,
                prepared.test_set,
                [NoMitigation()],
                inject_synapses=True,
                inject_neurons=False,
            )
            result = sweep.run(fault_rates=list(FAULT_RATES), rng=seed, label=fault_map_id)
            series[fault_map_id] = result
        return series

    series = benchmark.pedantic(run_case_study, rounds=1, iterations=1)

    print()
    for name, result in series.items():
        accuracies = result.techniques[MitigationKind.NO_MITIGATION].accuracies
        print(
            format_series(
                f"Fig3a {name} ({mnist_n400_config.label()})",
                list(FAULT_RATES),
                accuracies,
                x_label="fault rate",
            )
        )
        # Shape check: high fault rates should not *improve* accuracy relative
        # to the clean network by more than noise.
        assert accuracies[-1] <= result.clean_accuracy + 5.0

    # The two fault maps at the highest rate generally differ (Fig. 3a "A").
    values_at_max = [
        result.techniques[MitigationKind.NO_MITIGATION].accuracies[-1]
        for result in series.values()
    ]
    assert len(values_at_max) == 2


@pytest.mark.benchmark(group="fig03")
def test_fig03b_reexecution_overheads(benchmark):
    """Latency and energy of re-execution vs no mitigation (Fig. 3b)."""

    def compute_tables():
        model = AcceleratorModel(ComputeEngineConfig(n_neurons=400))
        return model.normalized_latency(), model.normalized_energy()

    latency, energy = benchmark.pedantic(compute_tables, rounds=1, iterations=1)

    rows = [
        ["no mitigation", latency[MitigationKind.NO_MITIGATION], energy[MitigationKind.NO_MITIGATION]],
        ["re-execution", latency[MitigationKind.RE_EXECUTION], energy[MitigationKind.RE_EXECUTION]],
    ]
    print()
    print(format_table(["design", "latency (norm.)", "energy (norm.)"], rows,
                       title="Fig. 3b — N400 compute engine"))

    assert latency[MitigationKind.RE_EXECUTION] == pytest.approx(3.0)
    assert energy[MitigationKind.RE_EXECUTION] == pytest.approx(3.0)
