"""BENCH — campaign throughput: serial executor vs process pool.

Runs the same small Fig. 13-style campaign grid (one experiment, 3 fault
rates x 3 trials x 2 techniques + the clean reference cell) through the
serial in-process executor and through a process pool, and records both
wall clocks in ``benchmarks/results/perf_campaign.json`` so successive PRs
can track orchestration overhead.

The grid is deliberately small enough for CI, so the pool's fixed costs
(process start-up, model snapshot save/load, dataset regeneration per
worker) are a visible fraction of the runtime; the bench therefore asserts
*correctness* hard (bit-identical per-trial accuracies between the two
executors — the campaign determinism contract) and the timing softly (the
pool must not be pathologically slower than serial).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.eval.campaign import CampaignSpec, TechniqueSpec, run_campaign
from repro.eval.experiment import ExperimentConfig
from repro.hardware.enhancements import MitigationKind

# At least 2 so the process-pool path is exercised even on one-core CI.
N_WORKERS = max(2, min(4, os.cpu_count() or 1))
FAULT_RATES = [1e-3, 1e-2, 1e-1]
N_TRIALS = 3

RESULTS_PATH = Path(__file__).parent / "results" / "perf_campaign.json"


def _spec() -> CampaignSpec:
    return CampaignSpec(
        name="perf-campaign",
        experiments=[
            ExperimentConfig(
                workload="mnist",
                n_neurons=48,
                n_train=200,
                n_test=40,
                timesteps=100,
                epochs=2,
                paper_network_size=400,
            )
        ],
        fault_rates=FAULT_RATES,
        techniques=[
            TechniqueSpec(MitigationKind.NO_MITIGATION),
            TechniqueSpec(MitigationKind.BNP3),
        ],
        n_trials=N_TRIALS,
        seed=2022,
        runner_seed=2022,
    )


def test_campaign_pool_vs_serial(tmp_path):
    # Train the clean model once up front and share the runner's cache
    # with both timed runs, so they measure cell execution and
    # orchestration, not model preparation.
    from repro.eval.experiment import ExperimentRunner

    runner = ExperimentRunner(root_seed=_spec().runner_seed)
    runner.prepare(_spec().experiments[0])

    start = time.perf_counter()
    serial = run_campaign(_spec(), n_workers=1, runner=runner)
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    pooled = run_campaign(
        _spec(),
        store_path=tmp_path / "pool.jsonl",
        n_workers=N_WORKERS,
        runner=runner,
    )
    pool_seconds = time.perf_counter() - start

    # Correctness first: the executors must agree bit-for-bit.
    key = _spec().experiments[0].label()
    serial_sweep = serial.sweeps[key]
    pooled_sweep = pooled.sweeps[key]
    assert pooled_sweep.clean_accuracy == serial_sweep.clean_accuracy
    for kind, series in serial_sweep.techniques.items():
        assert pooled_sweep.techniques[kind].per_trial == series.per_trial

    n_cells = serial.n_cells
    speedup = serial_seconds / pool_seconds if pool_seconds > 0 else float("inf")
    summary = {
        "n_cells": n_cells,
        "n_workers": N_WORKERS,
        "fault_rates": FAULT_RATES,
        "n_trials": N_TRIALS,
        "serial_seconds": round(serial_seconds, 3),
        "pool_seconds": round(pool_seconds, 3),
        "serial_ms_per_cell": round(1000.0 * serial_seconds / n_cells, 1),
        "pool_ms_per_cell": round(1000.0 * pool_seconds / n_cells, 1),
        "pool_speedup": round(speedup, 2),
    }
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(summary, indent=2) + "\n")

    print()
    print(
        f"BENCH perf_campaign: {n_cells} cells, serial "
        f"{summary['serial_seconds']}s, pool({N_WORKERS}) "
        f"{summary['pool_seconds']}s ({summary['pool_speedup']}x)"
    )

    # Soft timing floor: startup + snapshot costs are allowed, a pool that
    # takes more than 2.5x serial on this grid indicates an orchestration
    # regression (e.g. per-cell model reloads or lost worker caching).
    assert pool_seconds <= max(2.5 * serial_seconds, serial_seconds + 5.0), (
        f"process pool took {pool_seconds:.2f}s vs serial "
        f"{serial_seconds:.2f}s on {n_cells} cells"
    )
