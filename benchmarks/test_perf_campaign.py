"""BENCH — campaign throughput: serial executor vs the warm worker pool.

Runs a Fig. 13-shaped campaign grid (two workloads, the paper's five fault
rates, clean references included) through the serial in-process executor
and through the warm persistent worker pool at several worker counts, and
records the whole scaling curve ``{workers: speedup}`` in
``benchmarks/results/perf_campaign.json`` so successive PRs can track
orchestration overhead and scaling, not just a single point.

Correctness is asserted hard: the pooled store records must equal the
serial ones byte for byte (modulo the measured ``duration_seconds``) — the
campaign determinism contract.  Timing is asserted relative to what the
machine can actually deliver: with ``C`` available cores, ``w`` workers
can at best approach ``min(w, C)``x, so the floor scales with
``min(w, C)`` and degrades to "the warm pool must be near serial parity"
on a single-core box (where the old cold pool sat at 0.16x).

Set ``PERF_CAMPAIGN_SMOKE=1`` (the CI artifact step does) to shrink the
grid and the worker sweep for constrained runners.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.eval.campaign import CampaignSpec, TechniqueSpec, run_campaign
from repro.eval.experiment import ExperimentConfig, ExperimentRunner
from repro.eval.sweep import PAPER_FAULT_RATES
from repro.hardware.enhancements import MitigationKind

SMOKE = os.environ.get("PERF_CAMPAIGN_SMOKE") == "1"
AVAILABLE_CPUS = os.cpu_count() or 1

WORKLOADS = ["mnist"] if SMOKE else ["mnist", "fashion-mnist"]
FAULT_RATES = list(PAPER_FAULT_RATES)[-2:] if SMOKE else list(PAPER_FAULT_RATES)
N_TRIALS = 1 if SMOKE else 2
N_TEST = 40 if SMOKE else 100
WORKER_COUNTS = [2] if SMOKE else [2, 4]

RESULTS_PATH = Path(__file__).parent / "results" / "perf_campaign.json"


def _spec() -> CampaignSpec:
    return CampaignSpec.grid(
        name="perf-campaign",
        workloads=WORKLOADS,
        network_sizes=[48],
        fault_rates=FAULT_RATES,
        technique_kinds=[
            MitigationKind.NO_MITIGATION,
            MitigationKind.RE_EXECUTION,
            MitigationKind.BNP3,
        ],
        base=ExperimentConfig(
            n_train=200, n_test=N_TEST, timesteps=100, epochs=2,
            paper_network_size=400,
        ),
        paper_sizes={48: 400},
        n_trials=N_TRIALS,
        seed=2022,
        runner_seed=2022,
    )


def _store_cells(path: Path) -> list:
    records = []
    for line in path.read_text().splitlines():
        record = json.loads(line)
        if record.get("type") != "cell":
            continue
        record["duration_seconds"] = 0.0
        records.append(record)
    records.sort(key=lambda record: record["cell_id"])
    return [json.dumps(record, sort_keys=True) for record in records]


def _speedup_ceiling(n_workers: int) -> float:
    """Highest physically plausible speedup for *n_workers* on this machine.

    A pool cannot beat ``min(workers, cores)`` — anything above that
    (beyond measurement margin) means the serial baseline itself was
    anomalous (e.g. a load spike during the serial run), and committing
    the curve would inflate every speedup.  Guarded before the results
    file is written.
    """
    return 1.25 * min(n_workers, AVAILABLE_CPUS)


def _speedup_floor(n_workers: int) -> float:
    """Lowest acceptable speedup for *n_workers* on this machine.

    A warm pool cannot beat the core count, so expect 60% of the ideal
    ``min(workers, cores)``x when extra cores exist; on a single core the
    bar is near-parity with serial — the warm pool's whole point is that
    its fixed costs (snapshot load once, zero-copy attach) no longer
    swamp execution the way the old cold pool's did (0.16x).
    """
    usable = min(n_workers, AVAILABLE_CPUS)
    if usable <= 1:
        # Oversubscribed workers on one core add context-switch noise on
        # top of orchestration; the floor only needs to catch cold-pool
        # pathologies (per-unit reload/re-encode), which sit far below.
        return 0.4
    return 0.6 * usable


def test_campaign_warm_pool_scaling(tmp_path):
    # Train the clean models once up front and share the runner's cache
    # with every timed run, so they measure cell execution and
    # orchestration, not model preparation.
    runner = ExperimentRunner(root_seed=_spec().runner_seed)
    for config in _spec().experiments:
        runner.prepare(config)

    start = time.perf_counter()
    serial = run_campaign(
        _spec(), store_path=tmp_path / "serial.jsonl", n_workers=1, runner=runner
    )
    serial_seconds = time.perf_counter() - start
    serial_records = _store_cells(tmp_path / "serial.jsonl")
    n_cells = serial.n_cells

    curve = {1: 1.0}
    pool_seconds = {}
    for n_workers in WORKER_COUNTS:
        store = tmp_path / f"pool{n_workers}.jsonl"
        start = time.perf_counter()
        run_campaign(_spec(), store_path=store, n_workers=n_workers, runner=runner)
        elapsed = time.perf_counter() - start
        pool_seconds[n_workers] = elapsed
        curve[n_workers] = serial_seconds / elapsed if elapsed > 0 else float("inf")

        # Correctness first: the executors must agree byte for byte.
        assert _store_cells(store) == serial_records, (
            f"pool({n_workers}) store records diverged from serial"
        )

    # Best-of-2 serial baseline: re-measure after the pool runs and keep
    # the faster time.  A transient load spike during the single serial
    # run would otherwise inflate the whole speedup curve (a 1-CPU box
    # once "measured" 2.5x this way).
    start = time.perf_counter()
    run_campaign(
        _spec(), store_path=tmp_path / "serial2.jsonl", n_workers=1, runner=runner
    )
    serial_seconds = min(serial_seconds, time.perf_counter() - start)
    for n_workers in WORKER_COUNTS:
        curve[n_workers] = serial_seconds / pool_seconds[n_workers]

    # Physical sanity before the curve becomes the committed baseline.
    for n_workers in WORKER_COUNTS:
        ceiling = _speedup_ceiling(n_workers)
        assert curve[n_workers] <= ceiling, (
            f"pool({n_workers}) 'speedup' {curve[n_workers]:.2f}x exceeds the "
            f"physical ceiling {ceiling:.2f}x on {AVAILABLE_CPUS} cpu(s) — "
            f"the serial baseline ({serial_seconds:.2f}s) is anomalous; "
            f"not committing an inflated curve"
        )

    summary = {
        "n_cells": n_cells,
        "workloads": WORKLOADS,
        "fault_rates": FAULT_RATES,
        "n_trials": N_TRIALS,
        "available_cpus": AVAILABLE_CPUS,
        "smoke": SMOKE,
        "serial_seconds": round(serial_seconds, 3),
        "serial_ms_per_cell": round(1000.0 * serial_seconds / n_cells, 1),
        "pool_seconds": {
            str(workers): round(seconds, 3)
            for workers, seconds in pool_seconds.items()
        },
        "pool_speedup": {
            str(workers): round(speedup, 2) for workers, speedup in curve.items()
        },
    }
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(summary, indent=2) + "\n")

    print()
    print(
        f"BENCH perf_campaign: {n_cells} cells on {AVAILABLE_CPUS} cpu(s), "
        f"serial {summary['serial_seconds']}s, scaling "
        + ", ".join(f"{w}w={curve[w]:.2f}x" for w in WORKER_COUNTS)
    )

    for n_workers in WORKER_COUNTS:
        floor = _speedup_floor(n_workers)
        assert curve[n_workers] >= floor, (
            f"warm pool at {n_workers} workers reached {curve[n_workers]:.2f}x "
            f"(serial {serial_seconds:.2f}s, pool {pool_seconds[n_workers]:.2f}s) "
            f"on {AVAILABLE_CPUS} cpu(s); expected at least {floor:.2f}x"
        )
