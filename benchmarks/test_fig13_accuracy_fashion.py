"""Fig. 13(b) — accuracy of all mitigation techniques on Fashion-MNIST.

Same sweep as the MNIST bench but on the synthetic Fashion-MNIST workload.
As in the paper, the absolute accuracies are lower than on MNIST (the
garment classes are harder), the unmitigated engine still collapses at high
fault rates, and the BnP techniques recover most of the clean accuracy
(the paper reports improvements of up to 47 % for Fashion-MNIST).
"""

from __future__ import annotations

import pytest

from repro.core.bound_and_protect import BnPVariant
from repro.core.mitigation import BnPTechnique, NoMitigation, ReExecutionTMR
from repro.eval.reporting import format_table
from repro.eval.sweep import FaultRateSweep
from repro.hardware.enhancements import MitigationKind

from conftest import FAULT_RATES


@pytest.mark.benchmark(group="fig13-fashion")
def test_fig13_fashion_n400(benchmark, runner, fashion_n400_config, mnist_n400_config):
    prepared = runner.prepare(fashion_n400_config)
    techniques = [
        NoMitigation(),
        ReExecutionTMR(),
        BnPTechnique(BnPVariant.BNP1),
        BnPTechnique(BnPVariant.BNP2),
        BnPTechnique(BnPVariant.BNP3),
    ]

    def run_sweep():
        sweep = FaultRateSweep(prepared.model, prepared.test_set, techniques)
        return sweep.run(
            fault_rates=list(FAULT_RATES), rng=231, label=fashion_n400_config.label()
        )

    result = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    print()
    print(
        format_table(
            ["technique"] + [str(rate) for rate in FAULT_RATES],
            result.accuracy_table(),
            title=(
                f"Fig. 13b ({fashion_n400_config.label()}) — accuracy [%], "
                f"clean {result.clean_accuracy:.1f}%"
            ),
        )
    )

    no_mit = result.techniques[MitigationKind.NO_MITIGATION]
    # Collapse without mitigation at the highest rate.
    assert no_mit.accuracies[-1] < result.clean_accuracy - 20.0
    # Every mitigation recovers a substantial share of the lost accuracy.
    for kind in (
        MitigationKind.RE_EXECUTION,
        MitigationKind.BNP1,
        MitigationKind.BNP2,
        MitigationKind.BNP3,
    ):
        assert result.techniques[kind].accuracies[-1] > no_mit.accuracies[-1] + 10.0

    # Fashion-MNIST is the harder workload: its clean accuracy sits below the
    # MNIST clean accuracy measured by the companion bench configuration.
    mnist_prepared = runner.prepare(mnist_n400_config)
    mnist_clean = NoMitigation().evaluate(
        mnist_prepared.model, mnist_prepared.test_set, rng=5
    )
    assert result.clean_accuracy <= mnist_clean.accuracy_percent + 5.0
