"""Fig. 9 — clean vs faulty weight distributions.

Soft errors in the weight registers can push weight values beyond the
maximum weight of the clean (fault-free) network; the clean maximum is
therefore usable as the Bound-and-Protect weight threshold.  The bench
regenerates the two histograms (fault rate 0 and 0.1) and checks the key
facts the figure conveys: (i) the clean distribution lies entirely inside
the safe range, and (ii) the faulty distribution has a tail above the clean
maximum that reaches roughly twice its value.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fault_analysis import FaultToleranceAnalyzer
from repro.eval.reporting import format_table


@pytest.mark.benchmark(group="fig09")
def test_fig09_weight_distribution_under_bit_flips(benchmark, runner, mnist_n400_config):
    prepared = runner.prepare(mnist_n400_config)
    analyzer = FaultToleranceAnalyzer(prepared.model)

    analysis = benchmark.pedantic(
        lambda: analyzer.weight_distribution(fault_rate=0.1, bins=16, rng=9),
        rounds=1,
        iterations=1,
    )

    centers = 0.5 * (analysis.bin_edges[:-1] + analysis.bin_edges[1:])
    rows = [
        [f"{center:.4f}", int(clean), int(faulty)]
        for center, clean, faulty in zip(
            centers, analysis.clean_counts, analysis.faulty_counts
        )
    ]
    print()
    print(
        format_table(
            ["weight bin centre", "clean count", "faulty count (rate 0.1)"],
            rows,
            title=(
                "Fig. 9 — weight distribution "
                f"(wgh_max={analysis.clean_max_weight:.4f}, "
                f"wgh_hp={analysis.most_probable_weight:.4f})"
            ),
        )
    )
    print(
        f"weights above clean max: {analysis.n_weights_above_clean_max}, "
        f"increased: {analysis.n_increased}, decreased: {analysis.n_decreased}"
    )

    # Clean weights all lie inside the safe range [0, wgh_max] (allowing the
    # bin that contains wgh_max itself, since deployment re-quantises weights
    # onto the 8-bit register grid).
    clean_upper_bins = centers > analysis.clean_max_weight * 1.2
    assert analysis.clean_counts[clean_upper_bins].sum() == 0
    # Faulty weights spill above the safe range, up to ~2x the clean max
    # (the register full-scale has 2x headroom).
    assert analysis.n_weights_above_clean_max > 0
    assert analysis.faulty_counts[clean_upper_bins].sum() > 0
    full_scale = analysis.bin_edges[-1]
    assert full_scale == pytest.approx(2.0 * analysis.clean_max_weight, rel=0.05)
    # Bit flips both increase and decrease weights; increases matter most.
    assert analysis.n_increased > 0 and analysis.n_decreased > 0
    # Total mass is conserved between the two histograms.
    assert int(analysis.clean_counts.sum()) == int(np.sum(analysis.faulty_counts))
