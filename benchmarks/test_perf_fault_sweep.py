"""BENCH — map-parallel fault-sweep evaluation vs the per-cell loop.

Runs the Fig. 13 grid at the N400 proxy (all five mitigation techniques,
the paper's fault rates) three ways:

* **legacy per-cell loop** — the pre-map-parallel execution shape: for
  every ``(rate, trial)`` cell, draw the fault map and run each technique
  through its stand-alone :meth:`MitigationTechnique.evaluate` call (one
  full engine pass per (cell, technique), re-encoding the test set each
  time).  This is the baseline the speedup is measured against.
* **cell-at-a-time map-parallel** — :func:`execute_cell` per cell: one
  fused engine pass per cell covering all techniques.
* **grouped map-parallel** — :func:`execute_cell_group` per fault rate:
  all trials *and* all techniques of a rate in one fused pass.

Correctness is asserted hard — grouped and cell-at-a-time execution must
produce bit-identical records (the campaign determinism contract) — and
the grouped path must beat the legacy loop by the ROADMAP floor of 3x
(relaxed in ``PERF_FAULT_SWEEP_SMOKE=1`` CI mode, which also shrinks the
grid; the committed ``results/perf_fault_sweep.json`` records a full run).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core.mitigation import build_technique
from repro.eval.campaign import (
    build_experiment_cells,
    execute_cell_group,
    group_cells,
)
from repro.eval.experiment import ExperimentConfig, ExperimentRunner
from repro.eval.sweep import PAPER_FAULT_RATES
from repro.faults.fault_map import FaultMapGenerator
from repro.faults.models import ComputeEngineFaultConfig
from repro.hardware.enhancements import MitigationKind

SMOKE = os.environ.get("PERF_FAULT_SWEEP_SMOKE") == "1"

#: Fig. 13 compares every technique of the paper.
TECHNIQUE_KINDS = (
    MitigationKind.NO_MITIGATION,
    MitigationKind.RE_EXECUTION,
    MitigationKind.BNP1,
    MitigationKind.BNP2,
    MitigationKind.BNP3,
)

FAULT_RATES = list(PAPER_FAULT_RATES)[-2:] if SMOKE else list(PAPER_FAULT_RATES)
N_TRIALS = 2
#: CI runners are noisy and share cores; locally the grouped path clears 3x.
MIN_SPEEDUP = 1.5 if SMOKE else 3.0

RESULTS_PATH = Path(__file__).parent / "results" / "perf_fault_sweep.json"


def _legacy_cell_loop(cells, model, dataset, techniques):
    """The pre-map-parallel per-cell loop, reproduced on the stable API.

    One fault map per cell, replayed across the techniques through their
    stand-alone ``evaluate`` calls — n_techniques full engine passes (and
    re-encodings) per cell, which is exactly the cost structure this PR's
    engine removes.
    """
    map_generator = FaultMapGenerator(
        crossbar_shape=(model.network_config.n_inputs, model.n_neurons),
        quantizer=model.network_config.make_quantizer(model.clean_max_weight),
    )
    records = {}
    for cell in cells:
        generator = np.random.default_rng(cell.seed)
        config = ComputeEngineFaultConfig(
            fault_rate=cell.fault_rate,
            inject_synapses=cell.inject_synapses,
            inject_neurons=cell.inject_neurons,
        )
        fault_map = map_generator.generate(config, rng=generator)
        accuracies = {}
        for technique in techniques:
            outcome = technique.evaluate(
                model,
                dataset,
                fault_config=config,
                rng=generator,
                fault_map=fault_map,
                batch_size=cell.batch_size,
            )
            accuracies[technique.kind.value] = outcome.accuracy_percent
        records[cell.cell_id] = accuracies
    return records


def test_fault_sweep_map_parallel_speedup(runner, mnist_n400_config):
    prepared = runner.prepare(mnist_n400_config)
    model, test_set = prepared.model, prepared.test_set
    techniques = [build_technique(kind) for kind in TECHNIQUE_KINDS]

    cells = build_experiment_cells(
        mnist_n400_config.label(),
        FAULT_RATES,
        N_TRIALS,
        root_seed=2022,
        batch_size=mnist_n400_config.eval_batch_size,
        include_clean=False,
    )

    start = time.perf_counter()
    _legacy_cell_loop(cells, model, test_set, techniques)
    legacy_seconds = time.perf_counter() - start

    start = time.perf_counter()
    cellwise = [
        result
        for cell in cells
        for result in execute_cell_group([cell], model, test_set, techniques)
    ]
    cellwise_seconds = time.perf_counter() - start

    start = time.perf_counter()
    grouped = [
        result
        for unit in group_cells(cells)
        for result in execute_cell_group(unit, model, test_set, techniques)
    ]
    grouped_seconds = time.perf_counter() - start

    # Correctness first: grouped execution must be bit-identical to
    # cell-at-a-time execution, record for record.
    assert len(grouped) == len(cellwise) == len(cells)
    grouped_by_id = {result.cell_id: result for result in grouped}
    for single in cellwise:
        fused = grouped_by_id[single.cell_id]
        assert fused.accuracies == single.accuracies
        assert fused.n_faults == single.n_faults

    speedup = legacy_seconds / grouped_seconds if grouped_seconds > 0 else float("inf")
    n_evaluations = len(cells) * len(techniques)
    summary = {
        "smoke": SMOKE,
        "grid": {
            "experiment": mnist_n400_config.label(),
            "fault_rates": FAULT_RATES,
            "n_trials": N_TRIALS,
            "techniques": [kind.value for kind in TECHNIQUE_KINDS],
            "n_cells": len(cells),
            "n_evaluations": n_evaluations,
        },
        "legacy_per_cell_seconds": round(legacy_seconds, 3),
        "cellwise_map_parallel_seconds": round(cellwise_seconds, 3),
        "grouped_map_parallel_seconds": round(grouped_seconds, 3),
        "legacy_ms_per_evaluation": round(1000.0 * legacy_seconds / n_evaluations, 2),
        "grouped_ms_per_evaluation": round(
            1000.0 * grouped_seconds / n_evaluations, 2
        ),
        "speedup_grouped_vs_legacy": round(speedup, 2),
        "speedup_cellwise_vs_legacy": round(
            legacy_seconds / cellwise_seconds if cellwise_seconds > 0 else 0.0, 2
        ),
    }
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(summary, indent=2) + "\n")

    print()
    print(
        f"BENCH perf_fault_sweep: {len(cells)} cells x {len(techniques)} "
        f"techniques, legacy {summary['legacy_per_cell_seconds']}s, "
        f"cell-wise {summary['cellwise_map_parallel_seconds']}s, grouped "
        f"{summary['grouped_map_parallel_seconds']}s "
        f"({summary['speedup_grouped_vs_legacy']}x vs legacy)"
    )

    assert speedup >= MIN_SPEEDUP, (
        f"grouped map-parallel sweep is only {speedup:.2f}x faster than the "
        f"per-cell loop (floor {MIN_SPEEDUP}x) on {len(cells)} cells"
    )
