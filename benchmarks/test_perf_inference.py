"""BENCH — inference throughput: legacy loop vs sequential vs batched.

Times the classification of a fixed test set on a paper-scale N400
population through three code paths, then sweeps the batched engine up the
paper's network sizes (N400 → N6400) to record the scaling curve past the
single size the harness historically measured:

``legacy``
    The pre-batching inference pipeline: a per-image, per-timestep loop
    whose currents come from a dense float64 vector-matrix product (forced
    here by passing the stored weights as a dense ``effective_weights``
    override, which reproduces the original arithmetic).
``sequential``
    The same per-image loop on the exact integer-code current operator the
    batched engine shares (the parity reference).  The operator alone
    already speeds the loop up several times, because the float32 code
    matrix has a quarter of the memory footprint the legacy path streams
    every timestep.
``batched``
    The :class:`~repro.snn.engine.BatchedInferenceEngine` advancing 64
    samples per timestep.

The batched engine must beat the inference path it replaced by at least
5x; against the (already accelerated) sequential parity reference a
smaller factor remains.  Results (including the per-size scaling entries
under ``scaling``, each carrying its own geometry) are written to
``benchmarks/results/perf_inference.json`` so successive PRs can track the
hot path.  Set ``PERF_INFERENCE_SMOKE=1`` (the CI artifact step does) to
shrink the scaling sweep to its smallest point.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.data.synthetic_mnist import SyntheticMNIST
from repro.snn.inference import InferenceEngine
from repro.snn.network import DiehlCookNetwork, NetworkConfig

SMOKE = os.environ.get("PERF_INFERENCE_SMOKE") == "1"

#: Paper-scale excitatory population (Fig. 13 sweeps N400…N3600).
N_NEURONS = 400
TIMESTEPS = 150
N_SAMPLES = 64
BATCH_SIZE = 64

#: Scaling sweep points: ``(n_neurons, timesteps, n_samples, n_reps)``.
#: Paper sizes, unscaled; the N6400 point runs a shallower geometry — the
#: recorded ns/neuron-timestep normalizes the cost, so fewer samples and
#: timesteps keep the tier-1 wall time bounded while still exercising the
#: big-GEMM regime past the N1600 the curve historically stopped at.
#: Every full point is best-of-2 — a single rep at N6400 once swung the
#: committed ns/neuron-timestep by 2x between bench runs.
SCALING_POINTS = (
    [(400, 50, 16, 1)]
    if SMOKE
    else [(400, 150, 64, 2), (1600, 150, 64, 2), (6400, 100, 32, 2)]
)

RESULTS_PATH = Path(__file__).parent / "results" / "perf_inference.json"


def _merge_results(section, payload):
    """Update one key of the shared results file, keeping the others."""
    summary = {}
    if RESULTS_PATH.exists():
        summary = json.loads(RESULTS_PATH.read_text())
    summary[section] = payload
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(summary, indent=2) + "\n")


def _build():
    config = NetworkConfig(
        n_inputs=784, n_neurons=N_NEURONS, timesteps=TIMESTEPS
    )
    network = DiehlCookNetwork(config, rng=1)
    labels = np.arange(N_NEURONS, dtype=np.int64) % 10
    return network, InferenceEngine(network, labels)


def _best_of(n_reps, run):
    """Best-of-N wall time: the minimum is the least load-disturbed run."""
    best_seconds, result = None, None
    for _ in range(n_reps):
        start = time.perf_counter()
        result = run()
        elapsed = time.perf_counter() - start
        if best_seconds is None or elapsed < best_seconds:
            best_seconds = elapsed
    return best_seconds, result


def test_batched_engine_speedup():
    dataset = SyntheticMNIST().generate(n_samples=N_SAMPLES, rng=5)

    # Legacy pipeline: dense float64 weights through the per-image loop.
    network, engine = _build()
    dense_weights = network.synapses.weights
    legacy_seconds, legacy = _best_of(
        2,
        lambda: engine.evaluate_sequential(
            dataset, rng=np.random.default_rng(7), effective_weights=dense_weights
        ),
    )

    _, engine = _build()
    sequential_seconds, sequential = _best_of(
        2,
        lambda: engine.evaluate_sequential(dataset, rng=np.random.default_rng(7)),
    )

    _, engine = _build()
    batched_seconds, batched = _best_of(
        3,
        lambda: engine.evaluate(
            dataset, rng=np.random.default_rng(7), batch_size=BATCH_SIZE
        ),
    )

    # Throughput must not come at the cost of correctness: the batched
    # engine is spike-exact against the sequential parity reference.  (The
    # legacy path is timed only — its dense float64 sums can differ by an
    # ULP at threshold ties, which is exactly why the exact operator
    # replaced it.)
    assert np.array_equal(sequential.predictions, batched.predictions)
    assert np.array_equal(sequential.spike_counts, batched.spike_counts)

    speedup_vs_legacy = legacy_seconds / batched_seconds
    speedup_vs_sequential = sequential_seconds / batched_seconds
    summary = {
        "n_neurons": N_NEURONS,
        "timesteps": TIMESTEPS,
        "n_samples": N_SAMPLES,
        "batch_size": BATCH_SIZE,
        "legacy_ms_per_sample": round(1000.0 * legacy_seconds / N_SAMPLES, 3),
        "sequential_ms_per_sample": round(
            1000.0 * sequential_seconds / N_SAMPLES, 3
        ),
        "batched_ms_per_sample": round(1000.0 * batched_seconds / N_SAMPLES, 3),
        "speedup_vs_legacy": round(speedup_vs_legacy, 2),
        "speedup_vs_sequential": round(speedup_vs_sequential, 2),
    }
    _merge_results("n400_paths", summary)

    print()
    print(
        f"BENCH perf_inference: N{N_NEURONS}, {N_SAMPLES} samples, "
        f"batch {BATCH_SIZE}: legacy {summary['legacy_ms_per_sample']} "
        f"ms/sample, sequential {summary['sequential_ms_per_sample']} "
        f"ms/sample, batched {summary['batched_ms_per_sample']} ms/sample "
        f"({summary['speedup_vs_legacy']}x vs legacy, "
        f"{summary['speedup_vs_sequential']}x vs sequential)"
    )

    # The engine replaced the legacy path; that is the bar to clear.  An
    # idle single-core machine measures ~5.3x / ~2.5x; best-of-N timing
    # plus floors well below that keep a loaded CI worker from turning
    # the bench flaky.
    assert speedup_vs_legacy >= 3.0, (
        f"batched engine only {speedup_vs_legacy:.1f}x faster than the "
        f"legacy inference loop (legacy {legacy_seconds:.2f}s, batched "
        f"{batched_seconds:.2f}s)"
    )
    assert speedup_vs_sequential >= 1.3, (
        f"batched engine only {speedup_vs_sequential:.1f}x faster than the "
        f"sequential parity reference"
    )


def test_batched_scaling_curve():
    """Batched throughput from N400 up to N6400 (paper sizes, unscaled).

    The sweep records absolute ms/sample and the per-neuron-timestep cost
    at each size; the latter should stay roughly flat (the engine is
    GEMM-bound, and the GEMM grows linearly in ``n_neurons``), which is the
    signal that the batched path scales past the single N400 point the
    harness historically pinned.  Each point carries its own geometry
    (``SCALING_POINTS``) so the N6400 entry stays affordable; the
    normalized ns/neuron-timestep column is what makes the points
    comparable.  No speed floor is asserted across sizes — the curve is a
    tracking artifact, not a gate.
    """
    datasets = {}
    curve = {}
    print()
    for n_neurons, timesteps, n_samples, n_reps in SCALING_POINTS:
        if n_samples not in datasets:
            datasets[n_samples] = SyntheticMNIST().generate(
                n_samples=n_samples, rng=5
            )
        dataset = datasets[n_samples]
        config = NetworkConfig(
            n_inputs=784, n_neurons=n_neurons, timesteps=timesteps
        )
        network = DiehlCookNetwork(config, rng=1)
        labels = np.arange(n_neurons, dtype=np.int64) % 10
        engine = InferenceEngine(network, labels)
        seconds, _ = _best_of(
            n_reps,
            lambda engine=engine, dataset=dataset: engine.evaluate(
                dataset, rng=np.random.default_rng(7), batch_size=BATCH_SIZE
            ),
        )
        ms_per_sample = 1000.0 * seconds / n_samples
        ns_per_neuron_step = (
            1e9 * seconds / (n_samples * timesteps * n_neurons)
        )
        curve[f"N{n_neurons}"] = {
            "timesteps": timesteps,
            "n_samples": n_samples,
            "ms_per_sample": round(ms_per_sample, 3),
            "ns_per_neuron_timestep": round(ns_per_neuron_step, 2),
        }
        print(
            f"BENCH perf_inference scaling: N{n_neurons} "
            f"{curve[f'N{n_neurons}']['ms_per_sample']} ms/sample "
            f"({curve[f'N{n_neurons}']['ns_per_neuron_timestep']} "
            f"ns/neuron-timestep)"
        )
    _merge_results(
        "scaling",
        {
            "smoke": SMOKE,
            "batch_size": BATCH_SIZE,
            "available_cpus": os.cpu_count() or 1,
            "sizes": curve,
        },
    )
