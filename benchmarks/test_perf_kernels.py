"""BENCH — per-kernel throughput of the fused kernel layer.

Times the two primitives every engine runs — the exact register-code GEMM
and the in-place LIF timestep advance (:mod:`repro.snn.kernels`) — in
isolation, at paper-scale geometries (N400 and N1600 on 784 inputs), on
every backend available on this machine.  The numpy backend is always
measured; when numba is importable the compiled twins are measured too and
the per-kernel speedup is recorded (and floored — the compiled advance must
not be slower than the ufunc pipeline it replaces).

Results go to ``benchmarks/results/perf_kernels.json`` so successive PRs
can track each primitive separately from the end-to-end engine benches:
``<size>.<backend>.gemm_gops`` is GEMM throughput in effective
billion MACs/s, ``<size>.<backend>.advance_ns_per_neuron_step`` the advance
cost per neuron-timestep, and ``numba_speedup`` the compiled-over-numpy
ratio per kernel (absent without numba).  A second sweep times every
shipped neuron model's advance at N400 and records the per-model
ns/neuron-timestep under a ``models`` key, so the zoo's dynamics are
tracked alongside the default LIF.  Set ``PERF_KERNELS_SMOKE=1`` (the CI
artifact step does) to shrink the geometry sweep and drop the speedup
floor on loaded workers.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.snn.kernels import (
    KernelWorkspace,
    LIFStepConfig,
    OperationMasks,
    exact_gemm_dtype,
    exact_scale,
    get_backend,
    lif_advance,
    numba_available,
    register_gemm,
)

SMOKE = os.environ.get("PERF_KERNELS_SMOKE") == "1"

N_INPUTS = 784
#: Paper network sizes measured (Fig. 13 sweeps N400…N3600).
SIZES = [400] if SMOKE else [400, 1600]
#: Shipped neuron models measured by the per-model sweep.  Explicit rather
#: than :func:`repro.snn.models.available_models` so probe registrations
#: leaked by earlier test files never reach the bench.
MODEL_NAMES = ("lif", "cuba_lif", "fixed_point_lif")
TIMESTEPS = 30 if SMOKE else 100
BATCH = 32 if SMOKE else 64
N_REPS = 3 if SMOKE else 5
#: The compiled advance must at least match the numpy ufunc pipeline.
MIN_NUMBA_ADVANCE_SPEEDUP = 0.8

RESULTS_PATH = Path(__file__).parent / "results" / "perf_kernels.json"


def _best_of(n_reps, run):
    """Best-of-N wall time: the minimum is the least load-disturbed run."""
    best = np.inf
    for _ in range(n_reps):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best


def _bench_backend(backend, n_neurons, rng):
    """Time both kernels for one backend at one network size."""
    gemm_dtype = exact_gemm_dtype(N_INPUTS, 255)
    codes = np.ascontiguousarray(
        rng.integers(0, 256, size=(N_INPUTS, n_neurons)), dtype=gemm_dtype
    )
    raster = rng.random((BATCH * TIMESTEPS, N_INPUTS)) < 0.05

    def run_gemm():
        register_gemm(raster, codes, backend=backend)

    shape = (1, BATCH, n_neurons)
    currents = exact_scale(register_gemm(raster, codes), 2.0 / 255.0).reshape(
        (TIMESTEPS,) + shape
    )
    output = np.zeros((TIMESTEPS,) + shape, dtype=bool)
    threshold = np.full(n_neurons, 20.0)
    config = LIFStepConfig(
        v_rest=-65.0,
        v_reset=-60.0,
        v_min=-80.0,
        membrane_decay=0.95,
        refractory_period=5,
        inhibition_strength=1.0,
    )
    masks = OperationMasks.healthy(n_neurons)
    workspace = KernelWorkspace()
    state = {}

    def reset_state():
        state["arrays"] = (
            np.full(shape, config.v_rest, dtype=np.float64),
            np.zeros(shape, dtype=np.int64),
            np.zeros(shape, dtype=np.int64),
            np.zeros(shape, dtype=bool),
            np.zeros(shape, dtype=bool),
            np.empty(shape, dtype=bool),
            np.empty(shape, dtype=bool),
        )

    def run_advance():
        reset_state()
        lif_advance(
            currents,
            output,
            *state["arrays"],
            masks,
            threshold,
            config,
            workspace,
            backend=backend,
        )

    run_gemm()  # warm caches (and the JIT, for numba) off the clock
    run_advance()
    gemm_seconds = _best_of(N_REPS, run_gemm)
    advance_seconds = _best_of(N_REPS, run_advance)

    macs = raster.shape[0] * N_INPUTS * n_neurons
    neuron_steps = TIMESTEPS * BATCH * n_neurons
    return {
        "gemm_ms": round(1000.0 * gemm_seconds, 3),
        "gemm_gops": round(macs / gemm_seconds / 1e9, 3),
        "advance_ms": round(1000.0 * advance_seconds, 3),
        "advance_ns_per_neuron_step": round(
            1e9 * advance_seconds / neuron_steps, 2
        ),
        "_gemm_seconds": gemm_seconds,
        "_advance_seconds": advance_seconds,
    }


def test_kernel_throughput():
    backends = ["numpy"] + (["numba"] if numba_available() else [])
    summary = {
        "smoke": SMOKE,
        "backend": get_backend(),
        "numba_available": numba_available(),
        "n_inputs": N_INPUTS,
        "timesteps": TIMESTEPS,
        "batch": BATCH,
        "sizes": {},
    }
    for n_neurons in SIZES:
        rng = np.random.default_rng(n_neurons)
        per_backend = {
            backend: _bench_backend(backend, n_neurons, rng)
            for backend in backends
        }
        entry = {
            backend: {
                key: value
                for key, value in results.items()
                if not key.startswith("_")
            }
            for backend, results in per_backend.items()
        }
        if "numba" in per_backend:
            entry["numba_speedup"] = {
                "gemm": round(
                    per_backend["numpy"]["_gemm_seconds"]
                    / per_backend["numba"]["_gemm_seconds"],
                    2,
                ),
                "advance": round(
                    per_backend["numpy"]["_advance_seconds"]
                    / per_backend["numba"]["_advance_seconds"],
                    2,
                ),
            }
        summary["sizes"][f"N{n_neurons}"] = entry

    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(summary, indent=2) + "\n")

    print()
    for size, entry in summary["sizes"].items():
        for backend in backends:
            results = entry[backend]
            print(
                f"BENCH perf_kernels: {size} [{backend}] gemm "
                f"{results['gemm_gops']} GMAC/s, advance "
                f"{results['advance_ns_per_neuron_step']} ns/neuron-step"
            )
        if "numba_speedup" in entry:
            print(
                f"BENCH perf_kernels: {size} numba speedup "
                f"{entry['numba_speedup']['gemm']}x gemm, "
                f"{entry['numba_speedup']['advance']}x advance"
            )

    # Without numba there is nothing to compare — the JSON records the
    # numpy backend on its own, and the floor is skipped by construction.
    if numba_available() and not SMOKE:
        for size, entry in summary["sizes"].items():
            speedup = entry["numba_speedup"]["advance"]
            assert speedup >= MIN_NUMBA_ADVANCE_SPEEDUP, (
                f"numba advance at {size} is {speedup}x the numpy kernel — "
                "the compiled backend must not lose to the ufunc pipeline"
            )


def test_model_advance_costs():
    """Per-neuron-timestep advance cost of every shipped neuron model.

    Runs each registered model's :meth:`~repro.snn.models.NeuronModel.
    advance` — the exact dispatch path the engines take — over the same
    N400 geometry the kernel sweep uses, on the numpy backend (the only
    one all three models implement), and records the normalized
    ns/neuron-timestep per model.  Results merge into the ``models`` key
    of ``perf_kernels.json`` by read-modify-write: ``test_kernel_throughput``
    rewrites the file whole, so this test runs after it in file order and
    must preserve its payload.  No floor is asserted — the zoo's extra
    state (CUBA current, fixed-point quantization) legitimately costs more
    than the plain LIF pipeline; the column is a tracking artifact.
    """
    from repro.snn.models import get_model

    n_neurons = 400
    rng = np.random.default_rng(n_neurons)
    gemm_dtype = exact_gemm_dtype(N_INPUTS, 255)
    codes = np.ascontiguousarray(
        rng.integers(0, 256, size=(N_INPUTS, n_neurons)), dtype=gemm_dtype
    )
    raster = rng.random((BATCH * TIMESTEPS, N_INPUTS)) < 0.05

    shape = (1, BATCH, n_neurons)
    currents = exact_scale(register_gemm(raster, codes), 2.0 / 255.0).reshape(
        (TIMESTEPS,) + shape
    )
    output = np.zeros((TIMESTEPS,) + shape, dtype=bool)
    threshold = np.full(n_neurons, 20.0)
    config = LIFStepConfig(
        v_rest=-65.0,
        v_reset=-60.0,
        v_min=-80.0,
        membrane_decay=0.95,
        refractory_period=5,
        inhibition_strength=1.0,
    )
    masks = OperationMasks.healthy(n_neurons)
    workspace = KernelWorkspace()
    state = {}

    def reset_state():
        state["arrays"] = (
            np.full(shape, config.v_rest, dtype=np.float64),
            np.zeros(shape, dtype=np.int64),
            np.zeros(shape, dtype=np.int64),
            np.zeros(shape, dtype=bool),
            np.zeros(shape, dtype=bool),
            np.empty(shape, dtype=bool),
            np.empty(shape, dtype=bool),
        )

    neuron_steps = TIMESTEPS * BATCH * n_neurons
    per_model = {}
    print()
    for name in MODEL_NAMES:
        model = get_model(name)

        def run_advance(model=model):
            reset_state()
            model.advance(
                currents,
                output,
                *state["arrays"],
                masks,
                threshold,
                config,
                workspace,
                backend="numpy",
            )

        run_advance()  # warm caches off the clock
        seconds = _best_of(N_REPS, run_advance)
        per_model[name] = {
            "advance_ms": round(1000.0 * seconds, 3),
            "advance_ns_per_neuron_step": round(
                1e9 * seconds / neuron_steps, 2
            ),
        }
        print(
            f"BENCH perf_kernels: models [{name}] advance "
            f"{per_model[name]['advance_ns_per_neuron_step']} ns/neuron-step"
        )

    summary = {}
    if RESULTS_PATH.exists():
        summary = json.loads(RESULTS_PATH.read_text())
    summary["models"] = {
        "smoke": SMOKE,
        "n_neurons": n_neurons,
        "timesteps": TIMESTEPS,
        "batch": BATCH,
        "backend": "numpy",
        "per_model": per_model,
    }
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(summary, indent=2) + "\n")

    assert set(per_model) == set(MODEL_NAMES)
    for results in per_model.values():
        assert results["advance_ns_per_neuron_step"] > 0.0


def test_telemetry_overhead_guard():
    """Kernel instrumentation must cost ≤2% of the cheapest kernel call.

    A wall-clock A/B comparison of full benches with telemetry on and off
    is hopelessly noisy on shared CI workers, so the guard is analytic
    instead: each instrumented kernel call pays exactly one
    ``_record_kernel`` event (two counter increments through cached
    children), so the overhead fraction is the per-event record cost over
    the duration of the cheapest real kernel call the layer instruments —
    the smoke-geometry GEMM.  Runs in smoke mode too; the record path is
    microseconds of work.
    """
    from repro.obs import metrics as _obs
    from repro.snn import kernels as kernel_module

    assert _obs.enabled(), "guard must measure the enabled record path"

    n_events = 20_000

    def record_many():
        for _ in range(n_events):
            kernel_module._record_kernel("register_gemm", "numpy", 1000)

    record_many()  # warm the per-callsite child cache off the clock
    record_seconds = _best_of(3, record_many) / n_events

    # The cheapest instrumented call: a smoke-geometry register GEMM.
    rng = np.random.default_rng(0)
    n_neurons = 400
    gemm_dtype = exact_gemm_dtype(N_INPUTS, 255)
    codes = np.ascontiguousarray(
        rng.integers(0, 256, size=(N_INPUTS, n_neurons)), dtype=gemm_dtype
    )
    raster = rng.random((32 * 30, N_INPUTS)) < 0.05

    def run_gemm():
        register_gemm(raster, codes, backend="numpy")

    run_gemm()
    gemm_seconds = _best_of(N_REPS, run_gemm)

    overhead = record_seconds / gemm_seconds
    print(
        f"\nBENCH perf_kernels: telemetry record {1e9 * record_seconds:.0f} ns"
        f"/event = {100.0 * overhead:.3f}% of a smoke GEMM"
    )
    assert overhead <= 0.02, (
        f"telemetry records cost {100.0 * overhead:.2f}% of the cheapest "
        "instrumented kernel call — the observability layer must stay ≤2%"
    )
