"""Shared fixtures for the benchmark harness.

Each benchmark module regenerates one figure of the paper's evaluation.  The
paper's full-size experiments (N400…N3600 neurons, 60 k training images,
10 k test images) are scaled down so the whole harness runs on a laptop in a
few minutes; the scaled sizes and the mapping to the paper's sizes are
recorded in ``EXPERIMENTS.md``.  Trained clean models are cached per session
so the accuracy benches do not retrain for every figure.
"""

from __future__ import annotations

import pytest

from repro.eval.experiment import ExperimentConfig, ExperimentRunner

#: Scaled-down stand-ins for the paper's network sizes.  The ratio between
#: sizes is preserved (x2.25 steps in the paper become smaller steps here so
#: the largest case still runs quickly), and every accuracy bench reports
#: which paper size each proxy corresponds to.
SCALED_NETWORK_SIZES = {
    400: 48,
    900: 72,
    1600: 96,
    2500: 120,
    3600: 144,
}

#: Fault rates swept by the paper's compute-engine figures.
FAULT_RATES = (1e-4, 1e-3, 1e-2, 1e-1)


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    """Session-wide experiment runner (caches trained clean models)."""
    return ExperimentRunner(root_seed=2022)


@pytest.fixture(scope="session")
def mnist_n400_config() -> ExperimentConfig:
    """Scaled-down proxy of the paper's N400 / MNIST experiment."""
    return ExperimentConfig(
        workload="mnist",
        n_neurons=SCALED_NETWORK_SIZES[400],
        n_train=200,
        n_test=40,
        timesteps=100,
        epochs=2,
        paper_network_size=400,
    )


@pytest.fixture(scope="session")
def mnist_n900_config() -> ExperimentConfig:
    """Scaled-down proxy of the paper's N900 / MNIST experiment."""
    return ExperimentConfig(
        workload="mnist",
        n_neurons=SCALED_NETWORK_SIZES[900],
        n_train=200,
        n_test=40,
        timesteps=100,
        epochs=2,
        paper_network_size=900,
    )


@pytest.fixture(scope="session")
def fashion_n400_config() -> ExperimentConfig:
    """Scaled-down proxy of the paper's N400 / Fashion-MNIST experiment."""
    return ExperimentConfig(
        workload="fashion-mnist",
        n_neurons=SCALED_NETWORK_SIZES[400],
        n_train=200,
        n_test=40,
        timesteps=100,
        epochs=2,
        paper_network_size=400,
    )
