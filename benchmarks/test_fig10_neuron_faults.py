"""Fig. 10 — impact of faulty neuron operations and of the full compute engine.

(a) Accuracy under each of the four faulty neuron-operation types across
    fault rates: faulty ``Vmem increase`` / ``Vmem leak`` / ``spike
    generation`` are tolerable, faulty ``Vmem reset`` is catastrophic.
(b) Accuracy under combined synapse + neuron faults collapses as the fault
    rate grows, motivating the mitigation.
"""

from __future__ import annotations

import pytest

from repro.core.fault_analysis import FaultToleranceAnalyzer
from repro.core.mitigation import NoMitigation
from repro.eval.reporting import format_series, format_table
from repro.eval.sweep import FaultRateSweep
from repro.faults.models import NeuronFaultType
from repro.hardware.enhancements import MitigationKind

from conftest import FAULT_RATES

#: Fault rates of the paper's Fig. 10(a) x-axis.
NEURON_FAULT_RATES = (0.01, 0.1, 0.5, 1.0)


@pytest.mark.benchmark(group="fig10")
def test_fig10a_faulty_neuron_operation_types(benchmark, runner, mnist_n400_config):
    prepared = runner.prepare(mnist_n400_config)
    analyzer = FaultToleranceAnalyzer(prepared.model)

    sensitivity = benchmark.pedantic(
        lambda: analyzer.neuron_fault_sensitivity(
            prepared.test_set, fault_rates=list(NEURON_FAULT_RATES), rng=10
        ),
        rounds=1,
        iterations=1,
    )

    print()
    rows = [
        [fault_type.value] + [round(a, 1) for a in accuracies]
        for fault_type, accuracies in sensitivity.accuracy_by_type.items()
    ]
    print(
        format_table(
            ["faulty operation"] + [str(r) for r in NEURON_FAULT_RATES],
            rows,
            title=(
                "Fig. 10a — accuracy [%] vs neuron-operation fault rate "
                f"(clean {sensitivity.baseline_accuracy:.1f}%)"
            ),
        )
    )

    reset = sensitivity.accuracy_by_type[NeuronFaultType.VMEM_RESET]
    leak = sensitivity.accuracy_by_type[NeuronFaultType.VMEM_LEAK]
    increase = sensitivity.accuracy_by_type[NeuronFaultType.VMEM_INCREASE]
    spike_gen = sensitivity.accuracy_by_type[NeuronFaultType.SPIKE_GENERATION]

    # The paper's conclusion: only the faulty Vmem reset is catastrophic.
    assert min(reset) < sensitivity.baseline_accuracy - 30.0
    for tolerable in (leak, increase, spike_gen):
        # Tolerable types stay clearly above the reset curve at moderate rates.
        assert tolerable[1] > reset[1]
    assert NeuronFaultType.VMEM_RESET in sensitivity.critical_types()


@pytest.mark.benchmark(group="fig10")
def test_fig10b_combined_compute_engine_faults(benchmark, runner, mnist_n400_config):
    prepared = runner.prepare(mnist_n400_config)

    def run_sweep():
        sweep = FaultRateSweep(
            prepared.model,
            prepared.test_set,
            [NoMitigation()],
            inject_synapses=True,
            inject_neurons=True,
        )
        return sweep.run(fault_rates=list(FAULT_RATES), rng=20, label="fig10b")

    result = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    accuracies = result.techniques[MitigationKind.NO_MITIGATION].accuracies

    print()
    print(
        format_series(
            f"Fig10b no-mitigation ({mnist_n400_config.label()}), clean "
            f"{result.clean_accuracy:.1f}%",
            list(FAULT_RATES),
            accuracies,
            x_label="fault rate",
        )
    )

    # Accuracy decreases due to faulty synapses and neurons (paper's callout):
    # benign at 1e-4, collapsed at 1e-1.
    assert accuracies[0] >= result.clean_accuracy - 10.0
    assert accuracies[-1] < result.clean_accuracy - 25.0
    assert accuracies[-1] < accuracies[0]
