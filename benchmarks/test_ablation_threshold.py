"""Ablation benches for SoftSNN's two main design choices.

Not a paper figure — these benches probe the design decisions DESIGN.md
calls out:

* the weight-bounding threshold (the paper uses the clean maximum weight
  ``wgh_max``; the ablation compares lower percentile thresholds, which clip
  legitimate weights, and a threshold above the register range, which
  disables bounding entirely);
* the neuron-protection trigger length (the paper uses 2 consecutive
  above-threshold cycles).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bound_and_protect import BnPVariant
from repro.core.mitigation import BnPTechnique, NoMitigation
from repro.eval.reporting import format_table
from repro.faults.models import ComputeEngineFaultConfig


FAULT_RATE = 0.1


@pytest.mark.benchmark(group="ablation")
def test_ablation_weight_threshold_choice(benchmark, runner, mnist_n400_config):
    """Compare bounding thresholds: percentile choices vs the paper's wgh_max."""
    prepared = runner.prepare(mnist_n400_config)
    model = prepared.model
    config = ComputeEngineFaultConfig.synapses_only(FAULT_RATE)

    def run_ablation():
        results = {}
        thresholds = {
            "p50 of clean weights": float(np.percentile(model.weights, 50)),
            "p99 of clean weights": float(np.percentile(model.weights, 99)),
            "wgh_max (paper)": model.clean_max_weight,
            "no bounding (2x wgh_max)": 2.0 * model.clean_max_weight,
        }
        for name, threshold in thresholds.items():
            if threshold <= 0:
                continue
            technique = BnPTechnique(BnPVariant.BNP3)
            # Override the threshold derivation with the ablated value by
            # patching the model statistics seen by the bounding rule.
            import copy

            ablated_model = copy.copy(model)
            ablated_model.clean_max_weight = threshold
            ablated_model.clean_most_probable_weight = min(
                model.clean_most_probable_weight, threshold
            )
            outcome = technique.evaluate(
                ablated_model, prepared.test_set, config, rng=303
            )
            results[name] = outcome.accuracy_percent
        baseline = NoMitigation().evaluate(
            model, prepared.test_set, config, rng=303
        ).accuracy_percent
        return results, baseline

    results, baseline = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    print()
    rows = [[name, round(acc, 1)] for name, acc in results.items()]
    rows.append(["no mitigation", round(baseline, 1)])
    print(
        format_table(
            ["bounding threshold", f"accuracy [%] @ synapse fault rate {FAULT_RATE}"],
            rows,
            title="Ablation — weight-bounding threshold",
        )
    )

    # The paper's choice must not be worse than disabling bounding, and an
    # aggressive p50 threshold (which clips most legitimate weights) must not
    # be better than the paper's choice by a wide margin.
    assert results["wgh_max (paper)"] >= results["no bounding (2x wgh_max)"] - 10.0
    assert results["wgh_max (paper)"] >= results["p50 of clean weights"] - 10.0


@pytest.mark.benchmark(group="ablation")
def test_ablation_protection_trigger_cycles(benchmark, runner, mnist_n400_config):
    """Compare neuron-protection trigger lengths (the paper uses 2 cycles)."""
    prepared = runner.prepare(mnist_n400_config)
    config = ComputeEngineFaultConfig.full_compute_engine(FAULT_RATE)

    def run_ablation():
        accuracies = {}
        for cycles in (1, 2, 5, 20):
            technique = BnPTechnique(BnPVariant.BNP3, protection_trigger_cycles=cycles)
            outcome = technique.evaluate(
                prepared.model, prepared.test_set, config, rng=304
            )
            accuracies[cycles] = outcome.accuracy_percent
        baseline = NoMitigation().evaluate(
            prepared.model, prepared.test_set, config, rng=304
        ).accuracy_percent
        return accuracies, baseline

    accuracies, baseline = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    print()
    rows = [[cycles, round(acc, 1)] for cycles, acc in accuracies.items()]
    rows.append(["no mitigation", round(baseline, 1)])
    print(
        format_table(
            ["trigger cycles", f"accuracy [%] @ compute-engine fault rate {FAULT_RATE}"],
            rows,
            title="Ablation — neuron-protection trigger length",
        )
    )

    # Any reasonable trigger beats no mitigation.
    assert accuracies[2] > baseline + 10.0
    # A very long trigger reacts too late; the paper's 2-cycle choice is at
    # least as good.
    assert accuracies[2] >= accuracies[20] - 10.0
    # A 1-cycle trigger also gates healthy neurons (their comparator asserts
    # for exactly one cycle on every legitimate spike), which is exactly why
    # the paper requires >= 2 consecutive cycles.
    assert accuracies[2] >= accuracies[1] - 5.0
