"""Fig. 13(a,c,d) — accuracy of all mitigation techniques on MNIST.

For each (scaled-down) network size, the bench sweeps the compute-engine
fault rate over 1e-4…1e-1 and compares No-Mitigation, Re-execution (TMR) and
the three BnP variants on the synthetic-MNIST workload.  The expected shape,
as in the paper:

* the unmitigated network collapses at high fault rates,
* re-execution and all three BnP variants stay close to the clean accuracy
  (the paper reports <3 % degradation for N900 at rate 0.1),
* BnP2 sits slightly below BnP1/BnP3 because it substitutes the
  low-probability ``wgh_max`` value.
"""

from __future__ import annotations

import pytest

from repro.core.bound_and_protect import BnPVariant
from repro.core.mitigation import BnPTechnique, NoMitigation, ReExecutionTMR
from repro.eval.reporting import format_table
from repro.eval.sweep import FaultRateSweep
from repro.hardware.enhancements import MitigationKind

from conftest import FAULT_RATES


def _all_techniques():
    return [
        NoMitigation(),
        ReExecutionTMR(),
        BnPTechnique(BnPVariant.BNP1),
        BnPTechnique(BnPVariant.BNP2),
        BnPTechnique(BnPVariant.BNP3),
    ]


def _run_and_report(prepared, label, seed):
    sweep = FaultRateSweep(prepared.model, prepared.test_set, _all_techniques())
    result = sweep.run(fault_rates=list(FAULT_RATES), rng=seed, label=label)

    print()
    print(
        format_table(
            ["technique"] + [str(rate) for rate in FAULT_RATES],
            result.accuracy_table(),
            title=f"Fig. 13 ({label}) — accuracy [%], clean {result.clean_accuracy:.1f}%",
        )
    )
    return result


def _assert_paper_shape(result):
    no_mit = result.techniques[MitigationKind.NO_MITIGATION]
    bnp_kinds = (MitigationKind.BNP1, MitigationKind.BNP2, MitigationKind.BNP3)

    # The unmitigated engine collapses at the highest fault rate.
    assert no_mit.accuracies[-1] < result.clean_accuracy - 25.0
    for kind in bnp_kinds + (MitigationKind.RE_EXECUTION,):
        series = result.techniques[kind]
        # Every mitigation clearly beats no-mitigation at the highest rate...
        assert series.accuracies[-1] > no_mit.accuracies[-1] + 15.0
        # ...and stays within a bounded distance of the clean accuracy.
        assert series.accuracies[-1] >= result.clean_accuracy - 20.0
    # BnP improves substantially over no mitigation (paper: up to 80 % on MNIST).
    assert result.improvement_over_no_mitigation(MitigationKind.BNP3) > 25.0


@pytest.mark.benchmark(group="fig13-mnist")
def test_fig13_mnist_n400(benchmark, runner, mnist_n400_config):
    prepared = runner.prepare(mnist_n400_config)
    result = benchmark.pedantic(
        lambda: _run_and_report(prepared, mnist_n400_config.label(), seed=131),
        rounds=1,
        iterations=1,
    )
    _assert_paper_shape(result)


@pytest.mark.benchmark(group="fig13-mnist")
def test_fig13_mnist_n900(benchmark, runner, mnist_n900_config):
    prepared = runner.prepare(mnist_n900_config)
    result = benchmark.pedantic(
        lambda: _run_and_report(prepared, mnist_n900_config.label(), seed=132),
        rounds=1,
        iterations=1,
    )
    _assert_paper_shape(result)
    # Paper's headline: for N900 at fault rate 0.1, BnP keeps the degradation
    # small; allow a scaled-down margin here.
    bnp3 = result.techniques[MitigationKind.BNP3]
    assert bnp3.accuracies[-1] >= result.clean_accuracy - 15.0
